// HttpExporter: a minimal GET-only HTTP/1.1 listener riding the
// PiServer's epoll loop — no second event loop, no extra threads. It
// exists so standard tooling can scrape the telemetry plane without
// speaking the binary wire protocol:
//
//   GET /metrics  -> the MetricsRegistry's Prometheus text exposition
//   GET /healthz  -> ticker liveness (PiService::CheckLiveness): 200
//                    while the ticker is publishing (or idle), 503
//                    once work is pending past the stall threshold;
//                    the body carries uptime, staleness age, watchdog
//                    restarts, and the slow-consumer shed count
//   GET /statusz  -> operational summary: liveness line, hot-path
//                    profiler table (obs::GlobalProfiler), flight-
//                    recorder summary, and connection gauges
//
// Scope is deliberately tiny: requests are a single GET line (any
// other method earns 405, unknown paths 404, an unparsable or
// oversized request 400), responses carry Content-Length and
// `Connection: close`, and every connection serves exactly one
// request. That is all curl and a Prometheus scraper need, and it
// keeps the parser too small to be an attack surface.
//
// Threading: the owner (PiServer) registers the exporter's fds on its
// epoll and routes readiness events here via Owns()/OnEvent(); every
// method below runs on that one loop thread, so there are no locks.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/status.h"

namespace mqpi::service {
class PiService;
class ShardedPiService;
}  // namespace mqpi::service

namespace mqpi::net {

struct NetMetrics;

class HttpExporter {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = ephemeral; read the bound port back with port().
    std::uint16_t port = 0;
    int listen_backlog = 16;
    /// Requests larger than this are answered 400 and closed.
    std::size_t max_request_bytes = 8192;
    /// Accepts beyond this many concurrent scrapes are refused.
    std::size_t max_connections = 64;
  };

  /// `service` (and `net_metrics`, when given) must outlive the
  /// exporter; `net_metrics` enriches /healthz and /statusz with the
  /// serving edge's shed/connection tallies.
  HttpExporter(service::PiService* service, NetMetrics* net_metrics,
               Options options);
  /// Sharded variant: /metrics concatenates the coordinator's coord.*
  /// series with every shard's registry (each series labeled
  /// shard="i"), /healthz aggregates (healthy = no shard stalled), and
  /// /statusz dumps every shard's flight recorder.
  HttpExporter(service::ShardedPiService* coordinator,
               NetMetrics* net_metrics, Options options);
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds + listens and registers the listen fd on `epoll_fd` (the
  /// owner's loop). Further connection fds are registered there too.
  Status Start(int epoll_fd);
  /// Closes the listener and every live scrape connection. Must be
  /// called after the owning loop thread has stopped (or from it).
  void Stop();

  /// True when `fd` belongs to this exporter (listener or scrape).
  bool Owns(int fd) const;
  /// Handles one epoll readiness event for an owned fd.
  void OnEvent(int fd, std::uint32_t events);

  /// The bound TCP port (valid after Start()).
  std::uint16_t port() const { return bound_port_; }

  /// Requests answered, by status class (tests / statusz). Atomic so
  /// tests may read them while the loop thread is still serving.
  std::uint64_t requests_ok() const {
    return requests_ok_.load(std::memory_order_relaxed);
  }
  std::uint64_t requests_error() const {
    return requests_error_.load(std::memory_order_relaxed);
  }

  /// Test-only: makes the next `n` scrape-fd epoll registrations behave
  /// as if epoll_ctl(EPOLL_CTL_ADD) failed. Lets tests cover the
  /// registration-failure path, which cannot be provoked naturally on a
  /// healthy epoll. Safe to arm from a test thread; the countdown is
  /// consumed on the loop thread.
  void InjectEpollAddFailuresForTest(int n) {
    inject_epoll_add_failures_.store(n, std::memory_order_relaxed);
  }

 private:
  struct Scrape {
    std::string in;    // request bytes until the blank line
    std::string out;   // encoded response
    std::size_t sent = 0;
    bool responding = false;
  };

  void AcceptPending();
  void HandleReadable(int fd, Scrape* scrape);
  void FlushScrape(int fd, Scrape* scrape);
  void CloseScrape(int fd);
  /// Routes a parsed request line to a handler; returns the full
  /// HTTP/1.1 response bytes.
  std::string RespondTo(const std::string& method, const std::string& path);
  std::string MetricsBody() const;
  std::string HealthBody(bool* healthy) const;
  std::string StatusBody() const;

  /// Unsharded: the one service. Sharded: shard 0's service (the
  /// single-service fallbacks below stay shard-0-scoped by design).
  service::PiService* const service_;
  service::ShardedPiService* const coordinator_;  // null when unsharded
  NetMetrics* const net_metrics_;  // may be null
  const Options options_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::unordered_map<int, Scrape> scrapes_;
  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_error_{0};
  std::atomic<int> inject_epoll_add_failures_{0};
};

}  // namespace mqpi::net
