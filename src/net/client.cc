#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

namespace mqpi::net {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---- SnapshotView -----------------------------------------------------------

Status SnapshotView::Apply(const SnapshotFrame& frame, bool is_full) {
  if (is_full) {
    rows_.clear();
    ++fulls_applied_;
  } else {
    if (frame.base_sequence != sequence_) {
      return Status::FailedPrecondition(
          "snapshot stream gap: view holds sequence " +
          std::to_string(sequence_) + " but the delta patches base " +
          std::to_string(frame.base_sequence) + "; resubscribe");
    }
    ++deltas_applied_;
  }
  for (const auto& row : frame.rows) {
    rows_[row.id] = row;
  }
  sequence_ = frame.sequence;
  sim_time_ = frame.sim_time;
  num_running_ = frame.num_running;
  num_queued_ = frame.num_queued;
  num_blocked_ = frame.num_blocked;
  degraded_ = frame.degraded;
  shard_loads_ = frame.shard_loads;
  if (rows_.size() != frame.total_rows) {
    return Status::Internal("snapshot view holds " +
                            std::to_string(rows_.size()) + " rows, frame " +
                            std::to_string(frame.sequence) + " declares " +
                            std::to_string(frame.total_rows));
  }
  return Status::OK();
}

void SnapshotView::Reset() {
  rows_.clear();
  sequence_ = 0;
  sim_time_ = 0.0;
  num_running_ = 0;
  num_queued_ = 0;
  num_blocked_ = 0;
  degraded_ = false;
  shard_loads_.clear();
}

const service::QueryProgress* SnapshotView::Find(QueryId id) const {
  const auto it = rows_.find(id);
  return it == rows_.end() ? nullptr : &it->second;
}

std::vector<service::QueryProgress> SnapshotView::Rows() const {
  std::vector<service::QueryProgress> out;
  out.reserve(rows_.size());
  for (const auto& [id, row] : rows_) out.push_back(row);
  return out;
}

// ---- Client -----------------------------------------------------------------

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                std::uint16_t port,
                                                double timeout_s) {
  // Non-blocking connect + poll so `timeout_s` bounds the handshake
  // itself: a black-holed host (SYN into the void) fails on schedule
  // instead of hanging for the kernel's multi-minute default.
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return Status::Internal(std::string("connect failed: ") +
                              std::strerror(errno));
    }
    const double deadline = NowSeconds() + timeout_s;
    for (;;) {
      const double remaining = deadline - NowSeconds();
      if (remaining <= 0) {
        ::close(fd);
        return Status::Internal("connect to " + host + ":" +
                                std::to_string(port) + " timed out after " +
                                std::to_string(timeout_s) + "s");
      }
      pollfd pfd{fd, POLLOUT, 0};
      const int pr =
          ::poll(&pfd, 1, static_cast<int>(remaining * 1000) + 1);
      if (pr < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Status::Internal("poll failed during connect");
      }
      if (pr > 0) break;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
        so_error != 0) {
      ::close(fd);
      return Status::Internal(
          std::string("connect failed: ") +
          std::strerror(so_error != 0 ? so_error : errno));
    }
  }
  // Connected: back to blocking for the simple request/reply paths.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) < 0) {
    ::close(fd);
    return Status::Internal("fcntl failed clearing O_NONBLOCK");
  }
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::WriteAll(const std::string& bytes, double timeout_s) {
  (void)timeout_s;  // blocking socket; requests are small
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send failed: ") +
                              std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Result<Frame> Client::ReadFrame(double timeout_s, bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  const double deadline = NowSeconds() + timeout_s;
  for (;;) {
    // Try to peel a frame off what we already buffered.
    Frame frame;
    std::size_t consumed = 0;
    Status error;
    const DecodeResult r =
        TryDecodeFrame(inbuf_.data() + inpos_, inbuf_.size() - inpos_,
                       kMaxPayloadBytes, &frame, &consumed, &error);
    if (r == DecodeResult::kError) return error;
    if (r == DecodeResult::kFrame) {
      inpos_ += consumed;
      if (inpos_ == inbuf_.size()) {
        inbuf_.clear();
        inpos_ = 0;
      }
      return frame;
    }

    const double remaining = deadline - NowSeconds();
    if (remaining <= 0) {
      if (timed_out != nullptr) *timed_out = true;
      return Status::Internal("timed out waiting for a frame");
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(remaining * 1000) + 1);
    if (pr < 0 && errno != EINTR) {
      return Status::Internal("poll failed");
    }
    if (pr <= 0) continue;

    char chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::Internal("server closed the connection");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return Status::Internal(std::string("recv failed: ") +
                              std::strerror(errno));
    }
    inbuf_.append(chunk, static_cast<std::size_t>(n));
  }
}

Status Client::ApplyPush(const Frame& frame) {
  const auto* snapshot = std::get_if<SnapshotFrame>(&frame.body);
  if (snapshot == nullptr) return Status::OK();
  return view_.Apply(*snapshot,
                     frame.header.type == FrameType::kSnapshotFull);
}

Result<FrameBody> Client::Call(const FrameBody& request, double timeout_s) {
  const std::uint64_t id = next_request_id_++;
  MQPI_RETURN_NOT_OK(WriteAll(EncodeFrame(id, request), timeout_s));
  const double deadline = NowSeconds() + timeout_s;
  for (;;) {
    auto frame = ReadFrame(deadline - NowSeconds());
    if (!frame.ok()) return frame.status();
    if (std::holds_alternative<SnapshotFrame>(frame->body)) {
      // Unsolicited push interleaved with the reply; fold it in.
      MQPI_RETURN_NOT_OK(ApplyPush(*frame));
      continue;
    }
    if (frame->header.request_id != id) continue;  // stale reply
    if (const auto* error = std::get_if<ErrorReply>(&frame->body)) {
      return error->ToStatus();
    }
    return std::move(frame->body);
  }
}

Result<bool> Client::PumpOne(double timeout_s) {
  const double deadline = NowSeconds() + timeout_s;
  for (;;) {
    bool timed_out = false;
    auto frame = ReadFrame(deadline - NowSeconds(), &timed_out);
    if (!frame.ok()) {
      if (timed_out) return false;
      return frame.status();
    }
    if (const auto* error = std::get_if<ErrorReply>(&frame->body)) {
      // A push-channel ERROR is the server saying goodbye (shed or
      // drain) — surface it; the stream is over.
      const Status status = error->ToStatus();
      if (status.ok()) return Status::Internal("ERROR frame with OK code");
      return status;
    }
    if (std::holds_alternative<SnapshotFrame>(frame->body)) {
      MQPI_RETURN_NOT_OK(ApplyPush(*frame));
      return true;
    }
    // Stale replies etc.: skip and keep reading until the deadline.
  }
}

Result<std::uint64_t> Client::WaitForSequence(std::uint64_t min_sequence,
                                              double timeout_s) {
  const double deadline = NowSeconds() + timeout_s;
  while (view_.sequence() < min_sequence) {
    const double remaining = deadline - NowSeconds();
    if (remaining <= 0) {
      return Status::Internal("timed out at sequence " +
                              std::to_string(view_.sequence()));
    }
    auto frame = ReadFrame(remaining);
    if (!frame.ok()) return frame.status();
    if (const auto* error = std::get_if<ErrorReply>(&frame->body)) {
      return error->ToStatus();  // e.g. the shed goodbye
    }
    MQPI_RETURN_NOT_OK(ApplyPush(*frame));
  }
  return view_.sequence();
}

Result<QueryId> Client::SubmitSql(const std::string& sql, Priority priority) {
  SubmitRequest request;
  request.is_sql = true;
  request.sql = sql;
  request.priority = priority;
  auto reply = Call(FrameBody{std::move(request)});
  if (!reply.ok()) return reply.status();
  if (const auto* body = std::get_if<SubmitReply>(&*reply)) return body->id;
  return Status::Internal("unexpected reply type to SUBMIT");
}

Result<QueryId> Client::SubmitSynthetic(double cost, Priority priority,
                                        const std::string& label) {
  SubmitRequest request;
  request.is_sql = false;
  request.synthetic_cost = cost;
  request.label = label;
  request.priority = priority;
  auto reply = Call(FrameBody{std::move(request)});
  if (!reply.ok()) return reply.status();
  if (const auto* body = std::get_if<SubmitReply>(&*reply)) return body->id;
  return Status::Internal("unexpected reply type to SUBMIT");
}

Status Client::Cancel(QueryId id) {
  auto reply = Call(FrameBody{CancelRequest{id}});
  return reply.status();
}

Result<ProgressReply> Client::Progress(QueryId id) {
  auto reply = Call(FrameBody{ProgressRequest{id}});
  if (!reply.ok()) return reply.status();
  if (auto* body = std::get_if<ProgressReply>(&*reply)) {
    return std::move(*body);
  }
  return Status::Internal("unexpected reply type to PROGRESS");
}

Result<SimTime> Client::WhatIf(const WhatIfRequest& scenario) {
  auto reply = Call(FrameBody{scenario});
  if (!reply.ok()) return reply.status();
  if (const auto* body = std::get_if<WhatIfReply>(&*reply)) return body->eta;
  return Status::Internal("unexpected reply type to WHATIF");
}

Status Client::Ping() {
  auto reply = Call(FrameBody{PingRequest{0x50494e47u}});
  if (!reply.ok()) return reply.status();
  if (const auto* body = std::get_if<PongReply>(&*reply)) {
    if (body->nonce != 0x50494e47u) {
      return Status::Internal("pong nonce mismatch");
    }
    return Status::OK();
  }
  return Status::Internal("unexpected reply type to PING");
}

Result<StatsReply> Client::Stats() {
  auto reply = Call(FrameBody{StatsRequest{}});
  if (!reply.ok()) return reply.status();
  if (auto* body = std::get_if<StatsReply>(&*reply)) {
    return std::move(*body);
  }
  return Status::Internal("unexpected reply type to STATS");
}

Status Client::Subscribe(int shard) {
  SubscribeRequest request;
  request.shard = shard;
  return Call(FrameBody{request}).status();
}

Status Client::Unsubscribe() {
  return Call(FrameBody{UnsubscribeRequest{}}).status();
}

// ---- LocalSubscriber --------------------------------------------------------

int LocalSubscriber::Pump(std::vector<std::uint64_t>* sequences,
                          bool* shed_out) {
  int applied = 0;
  std::string bytes;
  while (subscription_->TryPop(&bytes)) {
    Frame frame;
    std::size_t consumed = 0;
    Status error;
    const DecodeResult r =
        TryDecodeFrame(bytes.data(), bytes.size(), kMaxPayloadBytes, &frame,
                       &consumed, &error);
    if (r != DecodeResult::kFrame) continue;  // never expected; skip
    if (std::holds_alternative<ErrorReply>(frame.body)) {
      saw_shed_ = true;
      continue;
    }
    if (const auto* snapshot = std::get_if<SnapshotFrame>(&frame.body)) {
      if (view_
              .Apply(*snapshot,
                     frame.header.type == FrameType::kSnapshotFull)
              .ok()) {
        ++applied;
        if (sequences != nullptr) sequences->push_back(snapshot->sequence);
      }
    }
  }
  if (shed_out != nullptr) *shed_out = saw_shed_;
  return applied;
}

}  // namespace mqpi::net
