// ResilientClient: a self-healing subscriber over net::Client.
//
// A plain Client dies with its TCP connection: a server restart, a
// net.conn_drop injection, or a shed goodbye strands it forever. The
// resilient wrapper owns a worker thread that keeps a subscription
// alive across all of that:
//
//   - reconnect with capped exponential backoff + jitter (seeded Rng —
//     deterministic in tests, decorrelated between real clients);
//   - PING-deadline liveness: a quiet stream gets a ping; no pong in
//     time means the connection is dead even if TCP has not noticed;
//   - automatic resubscribe after every reconnect, and after an
//     in-stream sequence gap (view Reset + fresh SUBSCRIBE on the same
//     connection) — either way the next push is a SNAPSHOT_FULL that
//     resyncs the view;
//   - `net.client.reconnects` / `net.client.resubscribes` counters and
//     a `net.client.connect_fail` fault point, so chaos runs can prove
//     the healing path fires.
//
// Reads are thread-safe: the worker maintains a mirror of the wire
// view under a mutex; View()/sequence()/WaitForSequence() never touch
// the socket. During an outage the mirror keeps the last synced rows
// (stale-but-available, same policy as the service's own staleness
// tagging); `connected()` says whether to trust it as fresh.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/random.h"
#include "common/status.h"
#include "net/client.h"

namespace mqpi::fault {
class FaultInjector;
}  // namespace mqpi::fault
namespace mqpi::service {
class MetricsRegistry;
class Counter;
}  // namespace mqpi::service

namespace mqpi::net {

class ResilientClient {
 public:
  struct Options {
    /// Bounds each TCP connect attempt (see Client::Connect).
    double connect_timeout_s = 2.0;
    /// Reconnect backoff: initial delay, doubling to the cap, with a
    /// uniform jitter of +-`backoff_jitter` x delay on top.
    double backoff_initial_s = 0.05;
    double backoff_max_s = 2.0;
    double backoff_jitter = 0.5;
    /// A stream quiet for this long gets a liveness ping; the ping's
    /// own call timeout is the pong deadline.
    double ping_interval_s = 1.0;
    /// Timeout for SUBSCRIBE/PING round trips.
    double call_timeout_s = 2.0;
    /// Jitter RNG seed (tests pin it).
    std::uint64_t seed = 0x5EED5EEDu;
    /// Optional chaos wiring (net.client.connect_fail).
    fault::FaultInjector* fault = nullptr;
    /// Optional counters: net.client.reconnects,
    /// net.client.resubscribes, net.client.connect_fails.
    service::MetricsRegistry* metrics = nullptr;
    /// Stream scope on sharded servers: -1 = merged/global (default),
    /// 0..N-1 = that shard's own stream. Re-applied on every
    /// reconnect/resubscribe.
    int subscribe_shard = -1;
  };

  /// Starts the worker immediately; it connects (and keeps
  /// reconnecting) until Stop() or destruction.
  ResilientClient(std::string host, std::uint16_t port, Options options);
  ResilientClient(std::string host, std::uint16_t port)
      : ResilientClient(std::move(host), port, Options()) {}
  ~ResilientClient();

  ResilientClient(const ResilientClient&) = delete;
  ResilientClient& operator=(const ResilientClient&) = delete;

  /// Stops the worker and closes the connection. Idempotent.
  void Stop();

  bool connected() const {
    return connected_.load(std::memory_order_acquire);
  }
  /// Successful connections beyond the first.
  std::uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  /// SUBSCRIBE round trips beyond the first.
  std::uint64_t resubscribes() const {
    return resubscribes_.load(std::memory_order_relaxed);
  }
  /// Stream-gap events healed via view Reset + resubscribe.
  std::uint64_t gaps_healed() const {
    return gaps_healed_.load(std::memory_order_relaxed);
  }

  /// Thread-safe copy of the latest synced view.
  SnapshotView View() const;
  std::uint64_t sequence() const;

  /// Blocks until the mirror reaches `min_sequence` (surviving any
  /// number of reconnects on the way) or `timeout_s` expires.
  bool WaitForSequence(std::uint64_t min_sequence, double timeout_s);

 private:
  void WorkerLoop();
  /// One connection's lifetime: subscribe, pump, ping when quiet.
  /// Returns when the connection is dead or stop was requested.
  void ServeConnection(Client* client);
  void PublishMirror(const SnapshotView& view);
  /// Interruptible backoff sleep; returns false when stopping.
  bool SleepBackoff(double* backoff_s);

  const std::string host_;
  const std::uint16_t port_;
  const Options options_;
  Rng rng_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> connected_{false};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> resubscribes_{0};
  std::atomic<std::uint64_t> gaps_healed_{0};
  std::uint64_t connects_total_ = 0;   // worker thread only
  std::uint64_t subscribes_total_ = 0;  // worker thread only

  mutable std::mutex mu_;
  std::condition_variable cv_;
  SnapshotView mirror_;  // guarded by mu_

  service::Counter* reconnects_counter_ = nullptr;
  service::Counter* resubscribes_counter_ = nullptr;
  service::Counter* connect_fails_counter_ = nullptr;

  std::thread worker_;
};

}  // namespace mqpi::net
