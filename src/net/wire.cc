#include "net/wire.h"

#include <cstring>

namespace mqpi::net {

namespace {

// Little-endian byte packing, independent of host representation.
void PutLe(std::string* buf, const void* src, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(src);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  for (std::size_t i = n; i-- > 0;) {
    buf->push_back(static_cast<char>(bytes[i]));
  }
#else
  buf->append(reinterpret_cast<const char*>(bytes), n);
#endif
}

void GetLe(const char* src, void* dst, std::size_t n) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  auto* bytes = static_cast<unsigned char*>(dst);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[n - 1 - i] = static_cast<unsigned char>(src[i]);
  }
#else
  std::memcpy(dst, src, n);
#endif
}

constexpr std::uint8_t kMaxFrameType =
    static_cast<std::uint8_t>(FrameType::kStatsReply);

bool ValidFrameType(std::uint8_t type) {
  if (type >= static_cast<std::uint8_t>(FrameType::kSubmit) &&
      type <= static_cast<std::uint8_t>(FrameType::kStats)) {
    return true;
  }
  return type >= static_cast<std::uint8_t>(FrameType::kSubmitReply) &&
         type <= kMaxFrameType;
}

bool ValidStatusCode(std::uint8_t code) {
  return code <= static_cast<std::uint8_t>(StatusCode::kUnavailable);
}

bool ValidQueryState(std::uint8_t state) {
  return state <= static_cast<std::uint8_t>(sched::QueryState::kAborted);
}

bool ValidPriority(std::uint8_t priority) {
  return priority < static_cast<std::uint8_t>(kNumPriorities);
}

}  // namespace

std::string_view FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kSubmit: return "SUBMIT";
    case FrameType::kCancel: return "CANCEL";
    case FrameType::kProgress: return "PROGRESS";
    case FrameType::kSubscribe: return "SUBSCRIBE";
    case FrameType::kUnsubscribe: return "UNSUBSCRIBE";
    case FrameType::kWhatIf: return "WHATIF";
    case FrameType::kPing: return "PING";
    case FrameType::kStats: return "STATS";
    case FrameType::kSubmitReply: return "SUBMIT_REPLY";
    case FrameType::kCancelReply: return "CANCEL_REPLY";
    case FrameType::kProgressReply: return "PROGRESS_REPLY";
    case FrameType::kSubscribeReply: return "SUBSCRIBE_REPLY";
    case FrameType::kUnsubscribeReply: return "UNSUBSCRIBE_REPLY";
    case FrameType::kWhatIfReply: return "WHATIF_REPLY";
    case FrameType::kPong: return "PONG";
    case FrameType::kSnapshotFull: return "SNAPSHOT_FULL";
    case FrameType::kSnapshotDelta: return "SNAPSHOT_DELTA";
    case FrameType::kError: return "ERROR";
    case FrameType::kStatsReply: return "STATS_REPLY";
  }
  return "UNKNOWN";
}

Status ErrorReply::ToStatus() const {
  switch (code) {
    case StatusCode::kOk: return Status::OK();
    case StatusCode::kInvalidArgument: return Status::InvalidArgument(message);
    case StatusCode::kNotFound: return Status::NotFound(message);
    case StatusCode::kAlreadyExists: return Status::AlreadyExists(message);
    case StatusCode::kOutOfRange: return Status::OutOfRange(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kAborted: return Status::Aborted(message);
    case StatusCode::kUnimplemented: return Status::Unimplemented(message);
    case StatusCode::kInternal: return Status::Internal(message);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case StatusCode::kUnavailable: return Status::Unavailable(message);
  }
  return Status::Internal(message);
}

ErrorReply ErrorReply::From(const Status& status) {
  ErrorReply error;
  error.code = status.code();
  error.message = status.message();
  return error;
}

// ---- writer / reader --------------------------------------------------------

void WireWriter::U8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
void WireWriter::U16(std::uint16_t v) { PutLe(&buf_, &v, sizeof v); }
void WireWriter::U32(std::uint32_t v) { PutLe(&buf_, &v, sizeof v); }
void WireWriter::U64(std::uint64_t v) { PutLe(&buf_, &v, sizeof v); }
void WireWriter::I32(std::int32_t v) {
  std::uint32_t u;
  std::memcpy(&u, &v, sizeof u);
  U32(u);
}
void WireWriter::F64(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  U64(u);
}
void WireWriter::Str(std::string_view s) {
  U32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

bool WireReader::Take(void* out, std::size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  GetLe(data_ + pos_, out, n);
  pos_ += n;
  return true;
}

bool WireReader::U8(std::uint8_t* v) { return Take(v, sizeof *v); }
bool WireReader::U16(std::uint16_t* v) { return Take(v, sizeof *v); }
bool WireReader::U32(std::uint32_t* v) { return Take(v, sizeof *v); }
bool WireReader::U64(std::uint64_t* v) { return Take(v, sizeof *v); }
bool WireReader::I32(std::int32_t* v) {
  std::uint32_t u = 0;
  if (!U32(&u)) return false;
  std::memcpy(v, &u, sizeof u);
  return true;
}
bool WireReader::F64(double* v) {
  std::uint64_t u = 0;
  if (!U64(&u)) return false;
  std::memcpy(v, &u, sizeof u);
  return true;
}
bool WireReader::Str(std::string* s) {
  std::uint32_t len = 0;
  if (!U32(&len)) return false;
  if (len > kMaxStringBytes || size_ - pos_ < len) {
    ok_ = false;
    return false;
  }
  s->assign(data_ + pos_, len);
  pos_ += len;
  return true;
}

// ---- snapshot rows ----------------------------------------------------------

void EncodeSnapshotRow(WireWriter* w, const service::QueryProgress& row) {
  w->U64(row.id);
  w->U64(row.session_id);
  w->U8(static_cast<std::uint8_t>(row.state));
  w->U8(static_cast<std::uint8_t>(row.priority));
  w->U8(row.degraded ? 1 : 0);
  w->I32(row.queue_position);
  w->F64(row.weight);
  w->F64(row.completed_work);
  w->F64(row.remaining_cost);
  w->F64(row.fraction_done);
  w->F64(row.speed);
  w->F64(row.eta_single);
  w->F64(row.eta_multi);
  w->F64(row.arrival_time);
  w->F64(row.start_time);
  w->F64(row.finish_time);
  w->Str(row.label);
}

bool DecodeSnapshotRow(WireReader* r, service::QueryProgress* row) {
  std::uint8_t state = 0;
  std::uint8_t priority = 0;
  std::uint8_t degraded = 0;
  if (!r->U64(&row->id) || !r->U64(&row->session_id) || !r->U8(&state) ||
      !r->U8(&priority) || !r->U8(&degraded) ||
      !r->I32(&row->queue_position) || !r->F64(&row->weight) ||
      !r->F64(&row->completed_work) || !r->F64(&row->remaining_cost) ||
      !r->F64(&row->fraction_done) || !r->F64(&row->speed) ||
      !r->F64(&row->eta_single) || !r->F64(&row->eta_multi) ||
      !r->F64(&row->arrival_time) || !r->F64(&row->start_time) ||
      !r->F64(&row->finish_time) || !r->Str(&row->label)) {
    return false;
  }
  if (!ValidQueryState(state) || !ValidPriority(priority) || degraded > 1) {
    return false;
  }
  row->state = static_cast<sched::QueryState>(state);
  row->priority = static_cast<Priority>(priority);
  row->degraded = degraded != 0;
  return true;
}

std::size_t EncodedRowBytes(const service::QueryProgress& row) {
  // 2x u64 + 3x u8 + i32 + 10x f64 + (u32 + label).
  return 16 + 3 + 4 + 80 + 4 + row.label.size();
}

// ---- payload encode ---------------------------------------------------------

namespace {

void EncodeBody(WireWriter* w, const SubmitRequest& p) {
  w->U8(static_cast<std::uint8_t>(p.priority));
  w->U8(p.is_sql ? 1 : 0);
  w->Str(p.sql);
  w->F64(p.synthetic_cost);
  w->Str(p.label);
}
void EncodeBody(WireWriter* w, const SubmitReply& p) { w->U64(p.id); }
void EncodeBody(WireWriter* w, const CancelRequest& p) { w->U64(p.id); }
void EncodeBody(WireWriter*, const CancelReply&) {}
void EncodeBody(WireWriter* w, const ProgressRequest& p) { w->U64(p.id); }
void EncodeBody(WireWriter* w, const ProgressReply& p) {
  w->U64(p.sequence);
  w->F64(p.sim_time);
  EncodeSnapshotRow(w, p.row);
}
void EncodeBody(WireWriter* w, const SubscribeRequest& p) {
  w->I32(p.shard);
}
void EncodeBody(WireWriter* w, const SubscribeReply& p) { w->U64(p.sequence); }
void EncodeBody(WireWriter*, const UnsubscribeRequest&) {}
void EncodeBody(WireWriter*, const UnsubscribeReply&) {}
void EncodeBody(WireWriter* w, const WhatIfRequest& p) {
  w->U64(p.target);
  w->U32(static_cast<std::uint32_t>(p.blocked.size()));
  for (QueryId id : p.blocked) w->U64(id);
  w->U32(static_cast<std::uint32_t>(p.aborted.size()));
  for (QueryId id : p.aborted) w->U64(id);
  w->U32(static_cast<std::uint32_t>(p.reweighted.size()));
  for (const auto& [id, weight] : p.reweighted) {
    w->U64(id);
    w->F64(weight);
  }
}
void EncodeBody(WireWriter* w, const WhatIfReply& p) { w->F64(p.eta); }
void EncodeBody(WireWriter* w, const PingRequest& p) { w->U64(p.nonce); }
void EncodeBody(WireWriter* w, const PongReply& p) { w->U64(p.nonce); }
void EncodeBody(WireWriter*, const StatsRequest&) {}
void EncodeBody(WireWriter* w, const StatsReply& p) {
  w->U64(p.uptime_quanta);
  w->F64(p.ticker_age_quanta);
  w->U64(p.snapshots_published);
  w->U64(p.watchdog_restarts);
  w->U8(p.degraded ? 1 : 0);
  w->U64(p.connections);
  w->U64(p.subscriptions);
  w->U64(p.frames_sent);
  w->U64(p.bytes_sent);
  w->U64(p.consumers_shed);
  w->U64(p.conn_frames_sent);
  w->U64(p.conn_bytes_sent);
  w->U64(p.conn_full_frames);
  w->U64(p.conn_delta_frames);
  w->U64(p.conn_queue_hw_frames);
  w->U64(p.conn_queue_hw_bytes);
  w->U32(static_cast<std::uint32_t>(p.shards.size()));
  for (const ShardStatsRow& row : p.shards) {
    w->I32(row.shard);
    w->U64(row.uptime_quanta);
    w->F64(row.ticker_age_quanta);
    w->U64(row.snapshots_published);
    w->U64(row.watchdog_restarts);
    w->U8(row.degraded ? 1 : 0);
    w->I32(row.num_running);
    w->I32(row.num_queued);
  }
}
void EncodeBody(WireWriter* w, const ErrorReply& p) {
  w->U8(static_cast<std::uint8_t>(p.code));
  w->Str(p.message);
}
void EncodeBody(WireWriter* w, const SnapshotFrame& p) {
  w->U64(p.sequence);
  w->U64(p.base_sequence);
  w->F64(p.sim_time);
  w->I32(p.num_running);
  w->I32(p.num_queued);
  w->I32(p.num_blocked);
  w->F64(p.measured_rate);
  w->F64(p.quiescent_eta);
  w->I32(p.age_quanta);
  w->U8(p.degraded ? 1 : 0);
  w->U32(p.total_rows);
  w->U32(static_cast<std::uint32_t>(p.rows.size()));
  for (const auto& row : p.rows) EncodeSnapshotRow(w, row);
  w->U32(static_cast<std::uint32_t>(p.shard_loads.size()));
  for (const service::ShardLoad& load : p.shard_loads) {
    w->I32(load.shard);
    w->U64(load.sequence);
    w->F64(load.sim_time);
    w->I32(load.num_running);
    w->I32(load.num_queued);
    w->F64(load.measured_rate);
    w->F64(load.quiescent_eta);
    w->U8(load.degraded ? 1 : 0);
  }
}

FrameType TypeOf(const FrameBody& body, bool full_snapshot) {
  struct Visitor {
    bool full;
    FrameType operator()(const SubmitRequest&) { return FrameType::kSubmit; }
    FrameType operator()(const SubmitReply&) {
      return FrameType::kSubmitReply;
    }
    FrameType operator()(const CancelRequest&) { return FrameType::kCancel; }
    FrameType operator()(const CancelReply&) {
      return FrameType::kCancelReply;
    }
    FrameType operator()(const ProgressRequest&) {
      return FrameType::kProgress;
    }
    FrameType operator()(const ProgressReply&) {
      return FrameType::kProgressReply;
    }
    FrameType operator()(const SubscribeRequest&) {
      return FrameType::kSubscribe;
    }
    FrameType operator()(const SubscribeReply&) {
      return FrameType::kSubscribeReply;
    }
    FrameType operator()(const UnsubscribeRequest&) {
      return FrameType::kUnsubscribe;
    }
    FrameType operator()(const UnsubscribeReply&) {
      return FrameType::kUnsubscribeReply;
    }
    FrameType operator()(const WhatIfRequest&) { return FrameType::kWhatIf; }
    FrameType operator()(const WhatIfReply&) {
      return FrameType::kWhatIfReply;
    }
    FrameType operator()(const PingRequest&) { return FrameType::kPing; }
    FrameType operator()(const PongReply&) { return FrameType::kPong; }
    FrameType operator()(const StatsRequest&) { return FrameType::kStats; }
    FrameType operator()(const StatsReply&) {
      return FrameType::kStatsReply;
    }
    FrameType operator()(const ErrorReply&) { return FrameType::kError; }
    FrameType operator()(const SnapshotFrame&) {
      return full ? FrameType::kSnapshotFull : FrameType::kSnapshotDelta;
    }
  };
  return std::visit(Visitor{full_snapshot}, body);
}

}  // namespace

std::string EncodeFrame(std::uint64_t request_id, const FrameBody& body,
                        bool full_snapshot) {
  WireWriter payload;
  std::visit([&](const auto& p) { EncodeBody(&payload, p); }, body);

  const FrameType type = TypeOf(body, full_snapshot);
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.bytes().size());
  WireWriter header;
  header.U32(static_cast<std::uint32_t>(payload.bytes().size()));
  header.U8(kWireVersion);
  header.U8(static_cast<std::uint8_t>(type));
  header.U16(0);  // flags, reserved
  header.U64(request_id);
  out = header.Take();
  out += payload.bytes();
  return out;
}

std::string EncodeFrame(const Frame& frame) {
  const bool full = frame.header.type != FrameType::kSnapshotDelta;
  return EncodeFrame(frame.header.request_id, frame.body, full);
}

// ---- payload decode ---------------------------------------------------------

namespace {

bool DecodeBody(WireReader* r, SubmitRequest* p) {
  std::uint8_t priority = 0;
  std::uint8_t is_sql = 0;
  if (!r->U8(&priority) || !r->U8(&is_sql) || !r->Str(&p->sql) ||
      !r->F64(&p->synthetic_cost) || !r->Str(&p->label)) {
    return false;
  }
  if (!ValidPriority(priority) || is_sql > 1) return false;
  p->priority = static_cast<Priority>(priority);
  p->is_sql = is_sql != 0;
  return true;
}
bool DecodeBody(WireReader* r, SubmitReply* p) { return r->U64(&p->id); }
bool DecodeBody(WireReader* r, CancelRequest* p) { return r->U64(&p->id); }
bool DecodeBody(WireReader*, CancelReply*) { return true; }
bool DecodeBody(WireReader* r, ProgressRequest* p) { return r->U64(&p->id); }
bool DecodeBody(WireReader* r, ProgressReply* p) {
  return r->U64(&p->sequence) && r->F64(&p->sim_time) &&
         DecodeSnapshotRow(r, &p->row);
}
bool DecodeBody(WireReader* r, SubscribeRequest* p) {
  // Legacy peers sent an empty payload; that still means "global".
  if (r->remaining() == 0) {
    p->shard = -1;
    return true;
  }
  return r->I32(&p->shard);
}
bool DecodeBody(WireReader* r, SubscribeReply* p) {
  return r->U64(&p->sequence);
}
bool DecodeBody(WireReader*, UnsubscribeRequest*) { return true; }
bool DecodeBody(WireReader*, UnsubscribeReply*) { return true; }
bool DecodeBody(WireReader* r, WhatIfRequest* p) {
  if (!r->U64(&p->target)) return false;
  std::uint32_t n = 0;
  if (!r->U32(&n) || n > kMaxSnapshotRows) return false;
  p->blocked.resize(n);
  for (auto& id : p->blocked) {
    if (!r->U64(&id)) return false;
  }
  if (!r->U32(&n) || n > kMaxSnapshotRows) return false;
  p->aborted.resize(n);
  for (auto& id : p->aborted) {
    if (!r->U64(&id)) return false;
  }
  if (!r->U32(&n) || n > kMaxSnapshotRows) return false;
  p->reweighted.resize(n);
  for (auto& [id, weight] : p->reweighted) {
    if (!r->U64(&id) || !r->F64(&weight)) return false;
  }
  return true;
}
bool DecodeBody(WireReader* r, WhatIfReply* p) { return r->F64(&p->eta); }
bool DecodeBody(WireReader* r, PingRequest* p) { return r->U64(&p->nonce); }
bool DecodeBody(WireReader* r, PongReply* p) { return r->U64(&p->nonce); }
bool DecodeBody(WireReader*, StatsRequest*) { return true; }
bool DecodeBody(WireReader* r, StatsReply* p) {
  std::uint8_t degraded = 0;
  const bool ok = r->U64(&p->uptime_quanta) && r->F64(&p->ticker_age_quanta) &&
                  r->U64(&p->snapshots_published) &&
                  r->U64(&p->watchdog_restarts) && r->U8(&degraded) &&
                  r->U64(&p->connections) && r->U64(&p->subscriptions) &&
                  r->U64(&p->frames_sent) && r->U64(&p->bytes_sent) &&
                  r->U64(&p->consumers_shed) && r->U64(&p->conn_frames_sent) &&
                  r->U64(&p->conn_bytes_sent) &&
                  r->U64(&p->conn_full_frames) &&
                  r->U64(&p->conn_delta_frames) &&
                  r->U64(&p->conn_queue_hw_frames) &&
                  r->U64(&p->conn_queue_hw_bytes);
  p->degraded = degraded != 0;
  if (!ok) return false;
  // Legacy peers end the payload here (unsharded reply).
  if (r->remaining() == 0) return true;
  std::uint32_t shard_count = 0;
  if (!r->U32(&shard_count) || shard_count > kMaxShardRows) return false;
  p->shards.resize(shard_count);
  for (ShardStatsRow& row : p->shards) {
    std::uint8_t row_degraded = 0;
    if (!r->I32(&row.shard) || !r->U64(&row.uptime_quanta) ||
        !r->F64(&row.ticker_age_quanta) ||
        !r->U64(&row.snapshots_published) ||
        !r->U64(&row.watchdog_restarts) || !r->U8(&row_degraded) ||
        !r->I32(&row.num_running) || !r->I32(&row.num_queued)) {
      return false;
    }
    if (row_degraded > 1) return false;
    row.degraded = row_degraded != 0;
  }
  return true;
}
bool DecodeBody(WireReader* r, ErrorReply* p) {
  std::uint8_t code = 0;
  if (!r->U8(&code) || !r->Str(&p->message)) return false;
  if (!ValidStatusCode(code)) return false;
  p->code = static_cast<StatusCode>(code);
  return true;
}
bool DecodeBody(WireReader* r, SnapshotFrame* p) {
  std::uint8_t degraded = 0;
  std::uint32_t row_count = 0;
  if (!r->U64(&p->sequence) || !r->U64(&p->base_sequence) ||
      !r->F64(&p->sim_time) || !r->I32(&p->num_running) ||
      !r->I32(&p->num_queued) || !r->I32(&p->num_blocked) ||
      !r->F64(&p->measured_rate) || !r->F64(&p->quiescent_eta) ||
      !r->I32(&p->age_quanta) || !r->U8(&degraded) || !r->U32(&p->total_rows) ||
      !r->U32(&row_count)) {
    return false;
  }
  if (degraded > 1 || row_count > kMaxSnapshotRows ||
      p->total_rows > kMaxSnapshotRows) {
    return false;
  }
  // A row is >= 107 bytes on the wire; reject counts the remaining
  // payload cannot possibly hold before allocating.
  if (static_cast<std::size_t>(row_count) * 107 > r->remaining()) {
    return false;
  }
  p->degraded = degraded != 0;
  p->rows.resize(row_count);
  for (auto& row : p->rows) {
    if (!DecodeSnapshotRow(r, &row)) return false;
  }
  // Legacy peers end the payload here (single-shard stream).
  if (r->remaining() == 0) return true;
  std::uint32_t load_count = 0;
  if (!r->U32(&load_count) || load_count > kMaxShardRows) return false;
  p->shard_loads.resize(load_count);
  for (service::ShardLoad& load : p->shard_loads) {
    std::uint8_t load_degraded = 0;
    std::int32_t shard = 0;
    std::int32_t running = 0;
    std::int32_t queued = 0;
    if (!r->I32(&shard) || !r->U64(&load.sequence) ||
        !r->F64(&load.sim_time) || !r->I32(&running) || !r->I32(&queued) ||
        !r->F64(&load.measured_rate) || !r->F64(&load.quiescent_eta) ||
        !r->U8(&load_degraded)) {
      return false;
    }
    if (load_degraded > 1) return false;
    load.shard = shard;
    load.num_running = running;
    load.num_queued = queued;
    load.degraded = load_degraded != 0;
  }
  return true;
}

template <typename T>
bool DecodeInto(WireReader* r, FrameBody* body) {
  T payload;
  if (!DecodeBody(r, &payload) || !r->Exhausted()) return false;
  *body = std::move(payload);
  return true;
}

bool DecodePayload(FrameType type, WireReader* r, FrameBody* body) {
  switch (type) {
    case FrameType::kSubmit: return DecodeInto<SubmitRequest>(r, body);
    case FrameType::kSubmitReply: return DecodeInto<SubmitReply>(r, body);
    case FrameType::kCancel: return DecodeInto<CancelRequest>(r, body);
    case FrameType::kCancelReply: return DecodeInto<CancelReply>(r, body);
    case FrameType::kProgress: return DecodeInto<ProgressRequest>(r, body);
    case FrameType::kProgressReply: return DecodeInto<ProgressReply>(r, body);
    case FrameType::kSubscribe: return DecodeInto<SubscribeRequest>(r, body);
    case FrameType::kSubscribeReply:
      return DecodeInto<SubscribeReply>(r, body);
    case FrameType::kUnsubscribe:
      return DecodeInto<UnsubscribeRequest>(r, body);
    case FrameType::kUnsubscribeReply:
      return DecodeInto<UnsubscribeReply>(r, body);
    case FrameType::kWhatIf: return DecodeInto<WhatIfRequest>(r, body);
    case FrameType::kWhatIfReply: return DecodeInto<WhatIfReply>(r, body);
    case FrameType::kPing: return DecodeInto<PingRequest>(r, body);
    case FrameType::kPong: return DecodeInto<PongReply>(r, body);
    case FrameType::kStats: return DecodeInto<StatsRequest>(r, body);
    case FrameType::kStatsReply: return DecodeInto<StatsReply>(r, body);
    case FrameType::kError: return DecodeInto<ErrorReply>(r, body);
    case FrameType::kSnapshotFull:
    case FrameType::kSnapshotDelta:
      return DecodeInto<SnapshotFrame>(r, body);
  }
  return false;
}

}  // namespace

DecodeResult TryDecodeFrame(const char* data, std::size_t size,
                            std::size_t max_payload, Frame* out,
                            std::size_t* consumed, Status* error) {
  *consumed = 0;
  if (size < kFrameHeaderBytes) return DecodeResult::kNeedMore;

  WireReader header(data, kFrameHeaderBytes);
  std::uint32_t payload_len = 0;
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  std::uint16_t flags = 0;
  std::uint64_t request_id = 0;
  header.U32(&payload_len);
  header.U8(&version);
  header.U8(&type);
  header.U16(&flags);
  header.U64(&request_id);

  if (version != kWireVersion) {
    *error = Status::InvalidArgument(
        "unsupported wire version " + std::to_string(version) + " (speak " +
        std::to_string(kWireVersion) + ")");
    return DecodeResult::kError;
  }
  if (flags != 0) {
    *error = Status::InvalidArgument("reserved frame flags must be 0");
    return DecodeResult::kError;
  }
  if (!ValidFrameType(type)) {
    *error = Status::InvalidArgument("unknown frame type " +
                                     std::to_string(type));
    return DecodeResult::kError;
  }
  const std::size_t cap = std::min(max_payload, kMaxPayloadBytes);
  if (payload_len > cap) {
    *error = Status::OutOfRange(
        "frame payload of " + std::to_string(payload_len) +
        " bytes exceeds the " + std::to_string(cap) + "-byte cap");
    return DecodeResult::kError;
  }
  if (size - kFrameHeaderBytes < payload_len) return DecodeResult::kNeedMore;

  out->header.payload_len = payload_len;
  out->header.version = version;
  out->header.type = static_cast<FrameType>(type);
  out->header.flags = flags;
  out->header.request_id = request_id;

  WireReader payload(data + kFrameHeaderBytes, payload_len);
  if (!DecodePayload(out->header.type, &payload, &out->body)) {
    *error = Status::InvalidArgument(
        std::string("malformed ") + std::string(FrameTypeName(out->header.type)) +
        " payload");
    return DecodeResult::kError;
  }
  *consumed = kFrameHeaderBytes + payload_len;
  return DecodeResult::kFrame;
}

}  // namespace mqpi::net
