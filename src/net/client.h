// Client-side pieces of the wire protocol:
//
//   SnapshotView — merges the server's SNAPSHOT_FULL / SNAPSHOT_DELTA
//   push stream back into a complete progress table (the inverse of
//   DeltaEncoder). Delta frames must patch the sequence the view
//   currently holds (or anything newer than their base); a gap means
//   frames were lost — the caller resubscribes.
//
//   Client — a blocking TCP client for examples, tests, and tools.
//   One Call() per request; snapshot pushes that interleave with the
//   reply stream are applied to the embedded view as they arrive.
//   Deliberately simple: one outstanding request, poll(2) timeouts.
//
//   LocalSubscriber — the no-socket endpoint the 100k-subscriber bench
//   instantiates in bulk: wraps a SubscriberPool Subscription and
//   applies its queued wire frames (byte-identical to what a TCP
//   subscriber would receive) to a SnapshotView.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "net/fanout.h"
#include "net/wire.h"

namespace mqpi::net {

class SnapshotView {
 public:
  /// Applies one push frame (decoded SnapshotFrame + which kind).
  /// FailedPrecondition when a delta's base sequence does not match
  /// what the view holds — the stream has a gap; resubscribe.
  Status Apply(const SnapshotFrame& frame, bool is_full);

  /// Back to the empty, sequence-0 state (the applied-frame tallies
  /// survive) — reuse the view across a resubscribe without carrying
  /// rows the new stream may never mention again.
  void Reset();

  std::uint64_t sequence() const { return sequence_; }
  SimTime sim_time() const { return sim_time_; }
  bool degraded() const { return degraded_; }
  std::int32_t num_running() const { return num_running_; }
  std::int32_t num_queued() const { return num_queued_; }
  std::size_t rows() const { return rows_.size(); }
  std::uint64_t fulls_applied() const { return fulls_applied_; }
  std::uint64_t deltas_applied() const { return deltas_applied_; }
  /// Per-shard load gauges from the last frame; empty on single-shard
  /// streams.
  const std::vector<service::ShardLoad>& shard_loads() const {
    return shard_loads_;
  }

  const service::QueryProgress* Find(QueryId id) const;
  /// All rows, sorted by id.
  std::vector<service::QueryProgress> Rows() const;

 private:
  std::map<QueryId, service::QueryProgress> rows_;
  std::uint64_t sequence_ = 0;
  SimTime sim_time_ = 0.0;
  std::int32_t num_running_ = 0;
  std::int32_t num_queued_ = 0;
  std::int32_t num_blocked_ = 0;
  bool degraded_ = false;
  std::vector<service::ShardLoad> shard_loads_;
  std::uint64_t fulls_applied_ = 0;
  std::uint64_t deltas_applied_ = 0;
};

// ---- TCP client -------------------------------------------------------------

class Client {
 public:
  /// Connects to a PiServer; `timeout_s` bounds the TCP connect itself
  /// (non-blocking connect + poll — a black-holed host fails in
  /// `timeout_s`, it does not hang). Internal on socket errors.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 std::uint16_t port,
                                                 double timeout_s = 5.0);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Typed requests (each = one Call round trip; server errors come
  // back as the ERROR frame's Status).
  Result<QueryId> SubmitSql(const std::string& sql,
                            Priority priority = Priority::kNormal);
  Result<QueryId> SubmitSynthetic(double cost,
                                  Priority priority = Priority::kNormal,
                                  const std::string& label = "");
  Status Cancel(QueryId id);
  Result<ProgressReply> Progress(QueryId id);
  Result<SimTime> WhatIf(const WhatIfRequest& scenario);
  Status Ping();
  /// Server health: service liveness, fan-out totals, and this
  /// connection's transfer counters (see wire.h StatsReply).
  Result<StatsReply> Stats();
  /// SUBSCRIBE; the immediate full snapshot lands in view() (either
  /// during this call or on the next Pump). `shard` picks the stream
  /// on sharded servers: -1 = merged/global, 0..N-1 = that shard's own
  /// publication (see wire.h SubscribeRequest).
  Status Subscribe(int shard = -1);
  Status Unsubscribe();

  /// Generic round trip: sends `request`, applies any interleaved
  /// snapshot pushes to view(), returns the matching reply body.
  Result<FrameBody> Call(const FrameBody& request, double timeout_s = 5.0);

  /// Drains pushed frames until view() reaches `min_sequence` or the
  /// timeout expires. Returns the view's sequence.
  Result<std::uint64_t> WaitForSequence(std::uint64_t min_sequence,
                                        double timeout_s = 5.0);

  /// Reads frames until one snapshot push has been applied to view()
  /// or `timeout_s` elapses: true = a push landed, false = timeout.
  /// Stream gaps (FailedPrecondition from the view) and connection
  /// errors surface as errors; non-push frames are skipped. The
  /// resilient wrapper's pump loop.
  Result<bool> PumpOne(double timeout_s);

  const SnapshotView& view() const { return view_; }
  /// The view is the caller's to reset across a resubscribe.
  SnapshotView* mutable_view() { return &view_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Blocks (up to `timeout_s`) for the next complete frame. On
  /// failure, `*timed_out` (optional) distinguishes deadline expiry
  /// from connection errors.
  Result<Frame> ReadFrame(double timeout_s, bool* timed_out = nullptr);
  Status WriteAll(const std::string& bytes, double timeout_s);
  /// Applies a push frame to the view; resubscribe-on-gap is the
  /// caller's job (the Status surfaces it).
  Status ApplyPush(const Frame& frame);

  int fd_;
  std::string inbuf_;
  std::size_t inpos_ = 0;
  std::uint64_t next_request_id_ = 1;
  SnapshotView view_;
};

// ---- in-process subscriber --------------------------------------------------

class LocalSubscriber {
 public:
  /// Wraps a Subscription obtained from PiServer::pool()->Subscribe().
  explicit LocalSubscriber(std::shared_ptr<Subscription> subscription)
      : subscription_(std::move(subscription)) {}

  /// Drains every queued frame into the view. Returns frames applied;
  /// `*shed_out` (optional) reports whether the shed goodbye (ERROR
  /// frame) was consumed. `sequences` (optional) collects the snapshot
  /// sequence of each applied frame, in order (latency stamping).
  int Pump(std::vector<std::uint64_t>* sequences = nullptr,
           bool* shed_out = nullptr);

  const SnapshotView& view() const { return view_; }
  const std::shared_ptr<Subscription>& subscription() const {
    return subscription_;
  }
  bool shed() const { return saw_shed_; }

 private:
  std::shared_ptr<Subscription> subscription_;
  SnapshotView view_;
  bool saw_shed_ = false;
};

}  // namespace mqpi::net
