// Rdbms: the multi-query execution substrate.
//
// Owns a buffer pool, a planner, an admission queue, and a
// weighted-fair-share scheduler that distributes the aggregate
// processing rate C (work units per second) over the running queries in
// proportion to their priority weights — the execution model the paper
// assumes (Assumptions 1 and 3), with optional perturbations that
// violate those assumptions for the robustness ablation.
//
// Time advances in quanta via Step(dt). Within a quantum each running
// query receives budget C*dt*w_i/W (plus its carried deficit, so
// operator-granularity overshoot evens out), completions are detected,
// and queued queries are admitted into freed slots.
//
// Thread-safety: none — an Rdbms is single-threaded state, externally
// synchronized by its owner. The concurrent frontend is
// service::PiService, which serializes every call (including the
// listeners registered here, which fire on the mutating thread) under
// one lock and publishes lock-free read snapshots instead of exposing
// this class to reader threads.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/priority.h"
#include "common/status.h"
#include "common/units.h"
#include "engine/planner.h"
#include "sched/clock.h"
#include "sched/perturbation.h"
#include "storage/catalog.h"

namespace mqpi::obs {
class Tracer;
}  // namespace mqpi::obs

namespace mqpi::fault {
class FaultInjector;
}  // namespace mqpi::fault

namespace mqpi::sched {

enum class QueryState {
  kQueued,    // waiting in the admission queue
  kRunning,   // receiving a share of C
  kBlocked,   // suspended by workload management (holds its slot)
  kFinished,  // ran to completion
  kAborted,   // killed by workload management
};

std::string_view QueryStateName(QueryState state);

struct RdbmsOptions {
  /// Aggregate processing rate C in work units per second (Assumption 1).
  double processing_rate = 1000.0;
  /// Maximum queries running (or blocked) at once; others queue.
  int max_concurrent = 1 << 30;
  /// Scheduling quantum in simulated seconds.
  SimTime quantum = 0.1;
  /// Priority -> weight mapping (Assumption 3).
  PriorityWeights weights;
  /// Optimizer statistics noise.
  engine::CostModelOptions cost_model;
  /// Buffer pool configuration.
  storage::BufferOptions buffer;
  /// Assumption violations (defaults: assumptions hold exactly).
  PerturbationOptions perturbation;
  /// Statement timeout: a query still unfinished this many simulated
  /// seconds after it *started* is aborted automatically (0 disables),
  /// like a workload manager's runaway-query guard.
  SimTime max_query_seconds = 0.0;
};

/// Everything externally observable about one query. Progress
/// indicators must restrict themselves to the fields marked
/// "observable"; ground truth lives only in the run's own history.
struct QueryInfo {
  QueryId id = kInvalidQueryId;
  std::string label;                         // SQL-ish text
  Priority priority = Priority::kNormal;
  double weight = 1.0;                       // observable
  QueryState state = QueryState::kQueued;
  SimTime arrival_time = 0.0;
  SimTime start_time = kUnknown;             // admission into running set
  SimTime finish_time = kUnknown;            // completion or abort
  WorkUnits optimizer_cost = 0.0;            // observable: plan-time estimate
  WorkUnits completed_work = 0.0;            // observable: e_i
  WorkUnits estimated_remaining_cost = 0.0;  // observable: refined c_i
  WorkUnits consumed_last_step = 0.0;        // observable: speed sample
  SimTime last_step_duration = 0.0;
  std::uint64_t rows_produced = 0;
  /// EXPLAIN ANALYZE-style I/O statistics (0 for synthetic queries).
  std::uint64_t pages_accessed = 0;
  std::uint64_t buffer_hits = 0;
};

/// Lifecycle events observable through Rdbms::AddEventListener.
enum class QueryEventKind {
  kSubmitted,  // entered the admission queue
  kStarted,    // admitted into the running set
  kBlocked,
  kResumed,
  kFinished,
  kAborted,
  kPriorityChanged,
};

std::string_view QueryEventKindName(QueryEventKind kind);

struct QueryEvent {
  QueryEventKind kind = QueryEventKind::kSubmitted;
  SimTime time = 0.0;
  QueryInfo info;
};

class Rdbms {
 public:
  /// `catalog` must outlive the Rdbms; data is shared read-only across
  /// instances so multi-run experiments build tables once.
  Rdbms(const storage::Catalog* catalog, RdbmsOptions options = {});
  ~Rdbms();

  Rdbms(const Rdbms&) = delete;
  Rdbms& operator=(const Rdbms&) = delete;

  // ---- submission and control ----------------------------------------------

  /// Plans and enqueues a query at the current simulated time. If a
  /// running slot is free (and admission is open) it starts
  /// immediately. Returns the new query id.
  Result<QueryId> Submit(const engine::QuerySpec& spec,
                         Priority priority = Priority::kNormal);

  /// Kills a queued, blocked, or running query (workload management
  /// operation O2'/O2). Completed work is lost.
  Status Abort(QueryId id);

  /// Suspends a running query; it keeps its slot but receives no work
  /// (the single-/multiple-query speed-up victim operation).
  Status Block(QueryId id);

  /// Resumes a blocked query.
  Status Resume(QueryId id);

  Status SetPriority(QueryId id, Priority priority);

  /// Instantaneously advances a running query by `work` units without
  /// consuming simulated time. Experiment setup only — used to start a
  /// scenario with queries "at a random point of their execution"
  /// (paper Sections 5.2.1 / 5.2.3). Fires completion listeners if the
  /// query finishes during the fast-forward.
  Status FastForward(QueryId id, WorkUnits work);

  /// Closes/opens the admission queue (maintenance operation O1).
  /// While closed, Submit() still queues queries but none are admitted.
  void SetAdmissionOpen(bool open);
  bool admission_open() const { return admission_open_; }

  // ---- time -----------------------------------------------------------------

  /// Advances simulated time by one quantum.
  void Step() { Step(options_.quantum); }

  /// Advances simulated time by `dt` (split into quanta internally).
  void Step(SimTime dt);

  /// Steps until no query is running or queued, or until `deadline`.
  /// Returns the final simulated time.
  SimTime RunUntilIdle(SimTime deadline = kInfiniteTime);

  SimTime now() const { return clock_.now(); }

  /// Monotonic load epoch: bumped by every transition that can change
  /// the inputs of a forecast — query lifecycle events (submit, admit,
  /// block/resume, finish, abort, priority change), every executed
  /// quantum (remaining costs and the clock move), fast-forwards, and
  /// admission-gate flips. Progress indicators key their forecast
  /// caches on it: as long as the epoch (and their own measured state)
  /// is unchanged, a memoized forecast is still exact. Reads follow the
  /// class's external-synchronization contract, same as every other
  /// accessor.
  std::uint64_t load_epoch() const { return load_epoch_; }

  /// Monotonic *structural* epoch: bumped only by transitions that
  /// change the shape of the modelled load — lifecycle events (submit,
  /// admit, block/resume, finish, abort, priority change),
  /// fast-forwards (an off-stream cost change), and admission-gate
  /// flips — but NOT by plain execution quanta. Together with
  /// load_epoch() this splits "the world moved" into "progress only"
  /// (load epoch moved, structural didn't: costs shrank proportionally
  /// and the clock advanced) versus "structure changed" (who
  /// runs/queues, with what weight or re-anchored cost). Incremental
  /// estimators absorb the former as an O(1) virtual-time bump and
  /// resynchronize only on the latter.
  std::uint64_t structural_epoch() const { return structural_epoch_; }

  // ---- inspection -----------------------------------------------------------

  Result<QueryInfo> info(QueryId id) const;
  std::vector<QueryInfo> RunningQueries() const;   // excludes blocked
  std::vector<QueryInfo> BlockedQueries() const;
  std::vector<QueryInfo> QueuedQueries() const;    // admission-queue order
  std::vector<QueryInfo> AllQueries() const;

  int num_running() const { return static_cast<int>(running_.size()); }
  int num_queued() const { return static_cast<int>(admission_queue_.size()); }
  bool Idle() const;

  /// 0-based position of a query among the live entries of the
  /// admission queue (the wait-line number a service shows the user).
  /// NotFound for unknown ids, FailedPrecondition if not queued.
  Result<int> QueuePosition(QueryId id) const;

  const RdbmsOptions& options() const { return options_; }

  /// The effective aggregate rate right now (C scaled by the
  /// perturbation model for the current multiprogramming level).
  double EffectiveRate() const;

  /// Completion hook: fired when a query finishes (not on abort).
  void AddCompletionListener(std::function<void(const QueryInfo&)> fn);

  /// Full lifecycle hook: fired for every QueryEvent (submission,
  /// start, block/resume, priority change, finish, abort).
  void AddEventListener(std::function<void(const QueryEvent&)> fn);

  /// Attaches a chaos harness (nullptr detaches). The injector is not
  /// owned and must outlive stepping. Once attached, every quantum
  /// evaluates the `sched.*` fault points (spurious aborts, admission
  /// flaps, rate collapse/spike, quantum stall/overshoot) before
  /// serving work; an unarmed injector costs one branch per quantum.
  void SetFaultInjector(fault::FaultInjector* injector) {
    fault_ = injector;
  }
  fault::FaultInjector* fault_injector() const { return fault_; }

  /// The planner (shared cost model / noise stream) — used by
  /// experiments to dry-run specs for ground truth.
  engine::Planner* planner() { return planner_.get(); }

  const storage::BufferManager& buffers() const { return *buffers_; }

 private:
  struct Record;

  void AdmitFromQueue();
  void StepOnce(SimTime dt);
  /// Evaluates the per-quantum sched fault points; returns the rate
  /// multiplier the injected faults impose on this quantum (1 when
  /// quiet, 0 for a stalled quantum).
  double ApplyStepFaults();
  QueryInfo MakeInfo(const Record& record) const;
  Record* Find(QueryId id);

  const storage::Catalog* catalog_;
  RdbmsOptions options_;
  obs::Tracer* tracer_;  // the process-wide tracer, cached
  SimClock clock_;
  std::unique_ptr<storage::BufferManager> buffers_;
  std::unique_ptr<engine::Planner> planner_;
  PerturbationModel perturbation_;
  fault::FaultInjector* fault_ = nullptr;  // optional chaos harness
  bool admission_open_ = true;

  /// Negative when the previous quantum's last served operator step
  /// overshot the pool; repaid from the next quantum's capacity.
  WorkUnits system_carry_ = 0.0;

  QueryId next_id_ = 1;
  std::uint64_t load_epoch_ = 0;
  std::uint64_t structural_epoch_ = 0;
  std::unordered_map<QueryId, std::unique_ptr<Record>> queries_;
  std::vector<QueryId> running_;           // running + blocked hold slots
  std::deque<QueryId> admission_queue_;
  void Emit(QueryEventKind kind, const Record& record);

  std::vector<std::function<void(const QueryInfo&)>> completion_listeners_;
  std::vector<std::function<void(const QueryEvent&)>> event_listeners_;
};

}  // namespace mqpi::sched
