// Simulated wall clock. The entire system is driven by one
// single-threaded clock so runs are deterministic and the "seconds" in
// every figure are simulated seconds.
#pragma once

#include <cassert>

#include "common/units.h"

namespace mqpi::sched {

class SimClock {
 public:
  SimTime now() const { return now_; }

  void Advance(SimTime dt) {
    assert(dt >= 0.0);
    now_ += dt;
  }

  void Reset() { now_ = 0.0; }

 private:
  SimTime now_ = 0.0;
};

}  // namespace mqpi::sched
