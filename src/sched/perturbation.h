// Controlled violations of the paper's simplifying assumptions
// (Section 2.1 / Section 4), used by the robustness ablation bench.
//
//   Assumption 1 (constant aggregate rate C): violated by a thrashing
//   model that degrades the aggregate rate once the multiprogramming
//   level exceeds a threshold.
//
//   Assumption 3 (speed proportional to priority weight): violated by
//   per-query interference multipliers, modelling e.g. an I/O-bound
//   query that does not yield its proportional share.
#pragma once

#include <cstdint>

#include "common/random.h"

namespace mqpi::sched {

struct PerturbationOptions {
  /// Multiprogramming level beyond which the aggregate rate degrades.
  /// Default: never (Assumption 1 holds exactly).
  int thrash_threshold = 1 << 30;
  /// Fractional rate loss per query beyond the threshold, e.g. 0.15
  /// means each extra query costs 15% of the base rate (floored at 10%).
  double thrash_factor = 0.0;
  /// Sigma of the per-query log-normal speed multiplier. 0 means
  /// Assumption 3 holds exactly.
  double speed_jitter_sigma = 0.0;
  /// Seed for the jitter stream.
  std::uint64_t seed = 1234;
};

class PerturbationModel {
 public:
  explicit PerturbationModel(PerturbationOptions options = {})
      : options_(options), rng_(options.seed) {}

  /// Multiplier on the aggregate processing rate C given the current
  /// number of running queries (Assumption 1 violation).
  double AggregateRateFactor(int num_running) const {
    if (num_running <= options_.thrash_threshold) return 1.0;
    const double loss =
        options_.thrash_factor *
        static_cast<double>(num_running - options_.thrash_threshold);
    const double factor = 1.0 - loss;
    return factor < 0.1 ? 0.1 : factor;
  }

  /// Per-query effective-weight multiplier, drawn once per query
  /// (Assumption 3 violation).
  double DrawSpeedMultiplier() {
    return rng_.LogNormalFactor(options_.speed_jitter_sigma);
  }

  const PerturbationOptions& options() const { return options_; }

 private:
  PerturbationOptions options_;
  Rng rng_;
};

}  // namespace mqpi::sched
