#include "sched/rdbms.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "fault/fault_injector.h"
#include "obs/profiler.h"
#include "obs/tracer.h"

namespace mqpi::sched {

namespace {

// Literal-backed names for trace events (TraceEvent stores pointers).
const char* TraceEventName(QueryEventKind kind) {
  switch (kind) {
    case QueryEventKind::kSubmitted:
      return "submitted";
    case QueryEventKind::kStarted:
      return "started";
    case QueryEventKind::kBlocked:
      return "blocked";
    case QueryEventKind::kResumed:
      return "resumed";
    case QueryEventKind::kFinished:
      return "finished";
    case QueryEventKind::kAborted:
      return "aborted";
    case QueryEventKind::kPriorityChanged:
      return "priority_changed";
  }
  return "unknown";
}

}  // namespace

std::string_view QueryEventKindName(QueryEventKind kind) {
  switch (kind) {
    case QueryEventKind::kSubmitted:
      return "submitted";
    case QueryEventKind::kStarted:
      return "started";
    case QueryEventKind::kBlocked:
      return "blocked";
    case QueryEventKind::kResumed:
      return "resumed";
    case QueryEventKind::kFinished:
      return "finished";
    case QueryEventKind::kAborted:
      return "aborted";
    case QueryEventKind::kPriorityChanged:
      return "priority_changed";
  }
  return "unknown";
}

std::string_view QueryStateName(QueryState state) {
  switch (state) {
    case QueryState::kQueued:
      return "queued";
    case QueryState::kRunning:
      return "running";
    case QueryState::kBlocked:
      return "blocked";
    case QueryState::kFinished:
      return "finished";
    case QueryState::kAborted:
      return "aborted";
  }
  return "unknown";
}

struct Rdbms::Record {
  QueryId id;
  engine::QuerySpec spec;
  Priority priority;
  QueryState state;
  SimTime arrival_time;
  SimTime start_time = kUnknown;
  SimTime finish_time = kUnknown;
  WorkUnits optimizer_cost = 0.0;
  std::unique_ptr<engine::QueryExecution> execution;
  WorkUnits deficit = 0.0;           // carried budget imbalance
  double speed_multiplier = 1.0;     // Assumption-3 perturbation
  WorkUnits consumed_last_step = 0.0;
  SimTime last_step_duration = 0.0;
};

Rdbms::Rdbms(const storage::Catalog* catalog, RdbmsOptions options)
    : catalog_(catalog),
      options_(options),
      tracer_(obs::GlobalTracer()),
      buffers_(std::make_unique<storage::BufferManager>(options.buffer)),
      planner_(std::make_unique<engine::Planner>(catalog, buffers_.get(),
                                                 options.cost_model)),
      perturbation_(options.perturbation) {}

Rdbms::~Rdbms() = default;

void Rdbms::Emit(QueryEventKind kind, const Record& record) {
  // Every lifecycle event changes the modelled load (who runs, who
  // queues, with what weight), so it invalidates cached forecasts —
  // and changes its *structure*, so incremental estimators must apply
  // a delta or resynchronize.
  ++load_epoch_;
  ++structural_epoch_;
  if (tracer_->enabled()) {
    tracer_->Instant("query", TraceEventName(kind), record.id, "t",
                     clock_.now());
  }
  if (event_listeners_.empty()) return;
  QueryEvent event;
  event.kind = kind;
  event.time = clock_.now();
  event.info = MakeInfo(record);
  for (const auto& listener : event_listeners_) listener(event);
}

Rdbms::Record* Rdbms::Find(QueryId id) {
  auto it = queries_.find(id);
  return it == queries_.end() ? nullptr : it->second.get();
}

Result<QueryId> Rdbms::Submit(const engine::QuerySpec& spec,
                              Priority priority) {
  obs::TraceSpan span(tracer_, "rdbms", "submit");
  auto prepared = planner_->Prepare(spec);
  if (!prepared.ok()) return prepared.status();

  auto record = std::make_unique<Record>();
  record->id = next_id_++;
  record->spec = spec;
  record->priority = priority;
  record->state = QueryState::kQueued;
  record->arrival_time = clock_.now();
  record->optimizer_cost = prepared->optimizer_cost;
  record->execution = std::move(prepared->execution);
  record->speed_multiplier = perturbation_.DrawSpeedMultiplier();

  const QueryId id = record->id;
  Record* raw = record.get();
  queries_.emplace(id, std::move(record));
  admission_queue_.push_back(id);
  Emit(QueryEventKind::kSubmitted, *raw);
  AdmitFromQueue();
  return id;
}

void Rdbms::AdmitFromQueue() {
  while (admission_open_ && !admission_queue_.empty() &&
         static_cast<int>(running_.size()) < options_.max_concurrent) {
    const QueryId id = admission_queue_.front();
    admission_queue_.pop_front();
    Record* record = Find(id);
    if (!MQPI_DCHECK(record != nullptr)) continue;
    if (record->state != QueryState::kQueued) continue;  // aborted in queue
    record->state = QueryState::kRunning;
    record->start_time = clock_.now();
    running_.push_back(id);
    Emit(QueryEventKind::kStarted, *record);
  }
}

Status Rdbms::Abort(QueryId id) {
  Record* record = Find(id);
  if (record == nullptr) {
    return Status::NotFound("query " + std::to_string(id) + " unknown");
  }
  switch (record->state) {
    case QueryState::kFinished:
    case QueryState::kAborted:
      return Status::FailedPrecondition("query " + std::to_string(id) +
                                        " already terminal");
    case QueryState::kQueued:
      // Lazy removal: AdmitFromQueue skips non-queued entries.
      break;
    case QueryState::kRunning:
    case QueryState::kBlocked:
      running_.erase(std::find(running_.begin(), running_.end(), id));
      break;
  }
  record->state = QueryState::kAborted;
  record->finish_time = clock_.now();
  Emit(QueryEventKind::kAborted, *record);
  AdmitFromQueue();
  return Status::OK();
}

Status Rdbms::Block(QueryId id) {
  Record* record = Find(id);
  if (record == nullptr) {
    return Status::NotFound("query " + std::to_string(id) + " unknown");
  }
  if (record->state != QueryState::kRunning) {
    return Status::FailedPrecondition(
        "query " + std::to_string(id) + " is " +
        std::string(QueryStateName(record->state)) + ", not running");
  }
  record->state = QueryState::kBlocked;
  record->deficit = 0.0;
  Emit(QueryEventKind::kBlocked, *record);
  return Status::OK();
}

Status Rdbms::Resume(QueryId id) {
  Record* record = Find(id);
  if (record == nullptr) {
    return Status::NotFound("query " + std::to_string(id) + " unknown");
  }
  if (record->state != QueryState::kBlocked) {
    return Status::FailedPrecondition(
        "query " + std::to_string(id) + " is " +
        std::string(QueryStateName(record->state)) + ", not blocked");
  }
  record->state = QueryState::kRunning;
  Emit(QueryEventKind::kResumed, *record);
  return Status::OK();
}

Status Rdbms::SetPriority(QueryId id, Priority priority) {
  Record* record = Find(id);
  if (record == nullptr) {
    return Status::NotFound("query " + std::to_string(id) + " unknown");
  }
  if (record->state == QueryState::kFinished ||
      record->state == QueryState::kAborted) {
    return Status::FailedPrecondition("query " + std::to_string(id) +
                                      " already terminal");
  }
  record->priority = priority;
  Emit(QueryEventKind::kPriorityChanged, *record);
  return Status::OK();
}

Status Rdbms::FastForward(QueryId id, WorkUnits work) {
  Record* record = Find(id);
  if (record == nullptr) {
    return Status::NotFound("query " + std::to_string(id) + " unknown");
  }
  if (record->state != QueryState::kRunning) {
    return Status::FailedPrecondition(
        "query " + std::to_string(id) + " is " +
        std::string(QueryStateName(record->state)) + ", not running");
  }
  if (work < 0.0) {
    return Status::InvalidArgument("fast-forward work must be >= 0");
  }
  // Remaining cost changes even when the query survives — and the
  // change is off-stream (no event), so it is structural too: an
  // incremental engine cannot absorb it as proportional progress.
  ++load_epoch_;
  ++structural_epoch_;
  record->execution->Advance(work);
  if (record->execution->done()) {
    record->state = QueryState::kFinished;
    record->finish_time = clock_.now();
    running_.erase(std::find(running_.begin(), running_.end(), record->id));
    const QueryInfo info = MakeInfo(*record);
    Emit(QueryEventKind::kFinished, *record);
    for (const auto& listener : completion_listeners_) listener(info);
    AdmitFromQueue();
  }
  return Status::OK();
}

void Rdbms::SetAdmissionOpen(bool open) {
  ++load_epoch_;
  ++structural_epoch_;
  admission_open_ = open;
  if (open) AdmitFromQueue();
}

void Rdbms::Step(SimTime dt) {
  if (!MQPI_DCHECK(dt >= 0.0)) return;
  MQPI_PROF_SITE(prof, "sched.step");
  SimTime remaining = dt;
  while (remaining > kTimeEpsilon) {
    const SimTime step = std::min(remaining, options_.quantum);
    StepOnce(step);
    remaining -= step;
  }
}

double Rdbms::ApplyStepFaults() {
  if (fault_->ShouldFire(fault::kSchedAdmissionFlap)) {
    SetAdmissionOpen(!admission_open_);
  }
  if (fault_->ShouldFire(fault::kSchedSpuriousAbort)) {
    std::vector<QueryId> victims;
    victims.reserve(running_.size());
    for (QueryId id : running_) {
      const Record* record = Find(id);
      if (record != nullptr && record->state == QueryState::kRunning) {
        victims.push_back(id);
      }
    }
    if (!victims.empty()) {
      const QueryId victim = victims[fault_->PickIndex(
          fault::kSchedSpuriousAbort, victims.size())];
      const Status status = Abort(victim);
      MQPI_DCHECK(status.ok());
    }
  }
  double factor = fault_->ScaleOr(fault::kSchedRateCollapse, 1.0) *
                  fault_->ScaleOr(fault::kSchedRateSpike, 1.0) *
                  fault_->ScaleOr(fault::kSchedQuantumOvershoot, 1.0);
  if (fault_->ShouldFire(fault::kSchedQuantumStall)) factor = 0.0;
  // A garbage payload (negative, NaN) must not corrupt the pot.
  if (!(factor >= 0.0) || !std::isfinite(factor)) factor = 0.0;
  return factor;
}

void Rdbms::StepOnce(SimTime dt) {
  obs::TraceSpan span(tracer_, "rdbms", "step");
  span.arg("t", clock_.now());
  // The quantum consumes work and advances the clock, so forecast
  // inputs (remaining costs, the forecast origin) change even when no
  // lifecycle event fires.
  ++load_epoch_;
  const double fault_factor =
      fault_ != nullptr && fault_->enabled() ? ApplyStepFaults() : 1.0;
  AdmitFromQueue();

  // Gather the active (running, unblocked) set and its total weight.
  std::vector<Record*> active;
  active.reserve(running_.size());
  double total_weight = 0.0;
  for (QueryId id : running_) {
    Record* record = Find(id);
    record->consumed_last_step = 0.0;
    record->last_step_duration = dt;
    if (record->state == QueryState::kRunning) {
      active.push_back(record);
      total_weight +=
          options_.weights.WeightOf(record->priority) *
          record->speed_multiplier;
    }
  }

  span.arg("active", static_cast<double>(active.size()));

  if (!active.empty() && total_weight > 0.0) {
    // Injected rate faults stack multiplicatively on the perturbation
    // model's MPL-dependent factor: a collapse squeezes the quantum's
    // capacity, an overshoot inflates it, a stall zeroes it (the clock
    // still advances, so the PI sees a quantum with no progress).
    const double rate =
        options_.processing_rate *
        perturbation_.AggregateRateFactor(static_cast<int>(active.size())) *
        fault_factor;
    // The quantum's real capacity; system_carry_ repays any operator
    // overshoot from the previous quantum.
    WorkUnits pot = rate * dt + system_carry_;
    std::vector<Record*> finished;
    auto weight_of = [this](const Record* record) {
      return options_.weights.WeightOf(record->priority) *
             record->speed_multiplier;
    };

    // Entitlements accrue by weight; serving drains them. A query's
    // deficit goes negative when an atomic operator step (e.g. one
    // correlated-sub-query probe) overshoots its entitlement; it then
    // waits until creditors have been served.
    for (Record* record : active) {
      record->deficit += rate * dt * weight_of(record) / total_weight;
    }

    // Serve in descending-entitlement order, creditors before debtors,
    // so capacity never idles while any query still has work (the
    // paper's Assumption 1) yet long-run shares stay proportional to
    // the weights (Assumption 3).
    std::vector<Record*> order(active);
    std::sort(order.begin(), order.end(),
              [](const Record* a, const Record* b) {
                if (a->deficit != b->deficit) return a->deficit > b->deficit;
                return a->id < b->id;
              });
    for (int pass = 0; pass < 2 && pot > 1e-9; ++pass) {
      for (Record* record : order) {
        if (pot <= 1e-9) break;
        if (record->execution->done()) continue;
        // Pass 0 serves entitled (creditor) queries their claim; pass 1
        // hands leftover capacity to anyone with work (debtors included).
        WorkUnits grant;
        if (pass == 0) {
          if (record->deficit <= 0.0) continue;
          grant = std::min(record->deficit, pot);
        } else {
          grant = pot;
        }
        const WorkUnits consumed = record->execution->Advance(grant);
        record->consumed_last_step += consumed;
        record->deficit -= consumed;
        pot -= consumed;
        if (record->execution->done()) {
          record->deficit = 0.0;
          finished.push_back(record);
        }
      }
    }
    // Carry operator overshoot into the next quantum; surplus capacity
    // (everything finished) does not accumulate.
    system_carry_ = pot < 0.0 ? pot : 0.0;

    for (Record* record : finished) {
      record->state = QueryState::kFinished;
      record->finish_time = clock_.now() + dt;
      running_.erase(
          std::find(running_.begin(), running_.end(), record->id));
      const QueryInfo info = MakeInfo(*record);
      Emit(QueryEventKind::kFinished, *record);
      for (const auto& listener : completion_listeners_) listener(info);
    }
  }

  clock_.Advance(dt);

  // Statement-timeout guard: abort runaway queries.
  if (options_.max_query_seconds > 0.0) {
    std::vector<QueryId> expired;
    for (QueryId id : running_) {
      const Record& record = *queries_.at(id);
      if (record.state == QueryState::kRunning &&
          record.start_time != kUnknown &&
          clock_.now() - record.start_time >
              options_.max_query_seconds + kTimeEpsilon) {
        expired.push_back(id);
      }
    }
    for (QueryId id : expired) {
      const Status status = Abort(id);
      MQPI_DCHECK(status.ok());
    }
  }

  AdmitFromQueue();
}

SimTime Rdbms::RunUntilIdle(SimTime deadline) {
  while (!Idle() && clock_.now() < deadline - kTimeEpsilon) {
    Step(options_.quantum);
  }
  return clock_.now();
}

bool Rdbms::Idle() const {
  if (!admission_queue_.empty()) {
    // Pending aborted entries don't count.
    for (QueryId id : admission_queue_) {
      auto it = queries_.find(id);
      if (it != queries_.end() &&
          it->second->state == QueryState::kQueued) {
        return false;
      }
    }
  }
  // Blocked queries hold slots but cannot make progress; they do not
  // prevent idleness on their own.
  for (QueryId id : running_) {
    auto it = queries_.find(id);
    if (it->second->state == QueryState::kRunning) return false;
  }
  return true;
}

double Rdbms::EffectiveRate() const {
  int active = 0;
  for (QueryId id : running_) {
    auto it = queries_.find(id);
    if (it->second->state == QueryState::kRunning) ++active;
  }
  return options_.processing_rate *
         perturbation_.AggregateRateFactor(active);
}

QueryInfo Rdbms::MakeInfo(const Record& record) const {
  QueryInfo info;
  info.id = record.id;
  info.label = record.spec.ToString();
  info.priority = record.priority;
  info.weight = options_.weights.WeightOf(record.priority);
  info.state = record.state;
  info.arrival_time = record.arrival_time;
  info.start_time = record.start_time;
  info.finish_time = record.finish_time;
  info.optimizer_cost = record.optimizer_cost;
  info.completed_work = record.execution->completed_work();
  info.estimated_remaining_cost = record.execution->EstimateRemainingCost();
  info.consumed_last_step = record.consumed_last_step;
  info.last_step_duration = record.last_step_duration;
  info.rows_produced = record.execution->rows_produced();
  if (const auto* account = record.execution->account()) {
    info.pages_accessed = account->pages_accessed();
    info.buffer_hits = account->buffer_hits();
  }
  return info;
}

Result<QueryInfo> Rdbms::info(QueryId id) const {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) + " unknown");
  }
  return MakeInfo(*it->second);
}

std::vector<QueryInfo> Rdbms::RunningQueries() const {
  std::vector<QueryInfo> out;
  for (QueryId id : running_) {
    const auto& record = *queries_.at(id);
    if (record.state == QueryState::kRunning) out.push_back(MakeInfo(record));
  }
  return out;
}

std::vector<QueryInfo> Rdbms::BlockedQueries() const {
  std::vector<QueryInfo> out;
  for (QueryId id : running_) {
    const auto& record = *queries_.at(id);
    if (record.state == QueryState::kBlocked) out.push_back(MakeInfo(record));
  }
  return out;
}

Result<int> Rdbms::QueuePosition(QueryId id) const {
  int position = 0;
  for (QueryId queued : admission_queue_) {
    auto it = queries_.find(queued);
    if (it == queries_.end() || it->second->state != QueryState::kQueued) {
      continue;  // lazily-removed abort
    }
    if (queued == id) return position;
    ++position;
  }
  if (queries_.find(id) == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) + " unknown");
  }
  return Status::FailedPrecondition("query " + std::to_string(id) +
                                    " is not queued");
}

std::vector<QueryInfo> Rdbms::QueuedQueries() const {
  std::vector<QueryInfo> out;
  for (QueryId id : admission_queue_) {
    const auto& record = *queries_.at(id);
    if (record.state == QueryState::kQueued) out.push_back(MakeInfo(record));
  }
  return out;
}

std::vector<QueryInfo> Rdbms::AllQueries() const {
  std::vector<QueryInfo> out;
  out.reserve(queries_.size());
  for (const auto& [id, record] : queries_) out.push_back(MakeInfo(*record));
  std::sort(out.begin(), out.end(),
            [](const QueryInfo& a, const QueryInfo& b) { return a.id < b.id; });
  return out;
}

void Rdbms::AddCompletionListener(std::function<void(const QueryInfo&)> fn) {
  completion_listeners_.push_back(std::move(fn));
}

void Rdbms::AddEventListener(std::function<void(const QueryEvent&)> fn) {
  event_listeners_.push_back(std::move(fn));
}

}  // namespace mqpi::sched
