// PiService: the concurrent multi-session frontend over the engine —
// the first step from "simulator" to "server".
//
// One PiService owns an Rdbms, a PiManager (auto-tracking every
// submission), an optional FutureWorkloadModel, and a MetricsRegistry,
// and drives them from a dedicated *ticker thread*: each tick advances
// the simulated clock by one quantum (paced against wall time by
// `time_scale`, or flat out when it is 0), feeds the progress
// indicators, and publishes an immutable ProgressSnapshot.
//
// Thread-safety contract:
//   - All engine and PI state is guarded by one internal mutex
//     (`state_mu_`); session control calls (Submit/Block/Resume/Abort/
//     SetPriority) serialize against the ticker on it. These calls are
//     cheap relative to a quantum, so contention stays low.
//   - Estimate *reads* never touch `state_mu_`: `snapshot()` copies a
//     `shared_ptr` under a dedicated pointer lock that is only ever
//     held for the copy/swap itself — never during `Rdbms::Step` — so
//     any number of dashboard/WLM readers can poll at any rate without
//     slowing execution (enforced by the TSan stress test).
//   - Metrics are atomics / short per-instrument locks, updatable from
//     any thread.
//
// Sessions (see service/session.h) are per-client handles with query
// ownership and admission accounting; open them with OpenSession().
// Sessions must be closed or destroyed before the service.
//
// Two driving modes:
//   - ticker mode (`start_ticker` true, the default): a background
//     thread steps the engine; Start()/Stop() control it. The ticker
//     parks itself while the system is idle and wakes on submission.
//   - manual mode (`start_ticker` false): no thread; the owner calls
//     Advance(dt) to step synchronously — deterministic, for shells
//     and tests.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "obs/auditor.h"
#include "obs/flight_recorder.h"
#include "obs/tracer.h"
#include "pi/future_model.h"
#include "pi/pi_manager.h"
#include "recover/event.h"
#include "sched/rdbms.h"
#include "service/metrics.h"
#include "service/snapshot.h"

namespace mqpi::fault {
class FaultInjector;
}  // namespace mqpi::fault

namespace mqpi::service {

class Session;

/// Watchdog over the ticker thread (ticker mode only): a busy system
/// whose ticker has published nothing for `stall_threshold_s` wall
/// seconds is declared stalled; the watchdog kills and restarts the
/// ticker thread, with capped exponential backoff between successive
/// restarts so a persistently faulty ticker cannot spin the watchdog.
/// Every restart increments `service.watchdog_restarts`.
struct WatchdogOptions {
  bool enabled = true;
  /// Wall seconds between health checks.
  double poll_interval_s = 0.05;
  /// Busy + no publication for this long (wall seconds) = stalled.
  /// Automatically raised to cover several paced tick periods when
  /// `time_scale` > 0, so pacing gaps are never misread as stalls.
  double stall_threshold_s = 0.5;
  /// Backoff after a restart before the next stall verdict; doubles
  /// per consecutive restart, capped, and resets once publishes flow.
  double backoff_initial_s = 0.1;
  double backoff_max_s = 2.0;
};

struct PiServiceOptions {
  /// Engine configuration (rate C, quantum, MPL, perturbations...).
  sched::RdbmsOptions rdbms;
  /// Progress-indicator configuration; `auto_track` is forced on so
  /// every submission gets a single-query PI.
  pi::PiManagerOptions pi;
  /// §2.4 prior (lambda, c-bar, p-bar); lambda == 0 disables arrival
  /// forecasting entirely.
  pi::FutureWorkloadEstimate future_prior;
  /// > 0 makes the future model adaptive with this prior strength.
  double future_prior_strength = 0.0;
  /// Simulated seconds advanced per wall-clock second by the ticker;
  /// 0 means "as fast as possible" (tests, batch runs).
  double time_scale = 0.0;
  /// false = manual mode: no ticker thread, drive with Advance().
  bool start_ticker = true;
  /// Ticker parks while nothing is running, queued, or scheduled
  /// (instead of burning CPU advancing an empty clock).
  bool pause_when_idle = true;
  /// Closing a session aborts its still-live queries (and drops its
  /// scheduled arrivals either way).
  bool abort_queries_on_session_close = true;
  /// Per-session cap on concurrently live (non-terminal) queries;
  /// Submit fails with FailedPrecondition at the cap. 0 = unlimited.
  std::uint64_t max_inflight_per_session = 0;
  /// Feed every published snapshot to the estimate auditor and publish
  /// labeled accuracy metrics (pi.estimate_mape, pi.estimate_bias,
  /// pi.monotonicity_violations) when queries complete.
  bool enable_auditor = true;
  /// Auditor tuning: trajectory caps, convergence band, truth cutoff.
  obs::AuditorOptions auditor;
  /// Optional chaos harness (not owned; must outlive the service).
  /// Wired into the Rdbms, the multi-query PI, and the service's own
  /// `service.*` fault points. Null = zero fault machinery on any hot
  /// path beyond a single branch.
  fault::FaultInjector* fault = nullptr;
  /// Ticker-thread watchdog (ticker mode only; see WatchdogOptions).
  WatchdogOptions watchdog;
  /// Overload shedding: Submit fails with ResourceExhausted when the
  /// admission queue already holds this many queries (0 = unbounded).
  /// Counted in `service.submits_shed`.
  std::uint64_t max_queued_queries = 0;
  /// SubmitAt fails with ResourceExhausted when this many scheduled
  /// arrivals are already pending (0 = unbounded).
  std::uint64_t max_pending_arrivals = 0;
  /// Staleness tagging: when publication is delayed (fault or outage)
  /// the previous snapshot is re-published with `age_quanta`
  /// incremented; once the age reaches this many quanta the snapshot
  /// is flagged `degraded` so readers can distrust it.
  int stale_snapshot_quanta = 4;
  /// The incident black box (see obs/flight_recorder.h). Always
  /// recording by default; the service pulls its dump triggers on
  /// watchdog restarts and degraded publications, and the network
  /// edge adds consumer sheds.
  obs::FlightRecorderOptions flight_recorder;
  /// Arm the process-wide hot-path profiler (obs::GlobalProfiler())
  /// at construction so every quantum accumulates a per-site cost
  /// breakdown for /statusz. Off by default: disabled cost is one
  /// relaxed load per instrumented scope.
  bool enable_profiler = false;
  /// Pin the ticker thread to this CPU (sched_setaffinity on the
  /// thread). -1 = no pinning. Shards use this so each scheduler's
  /// ticker stays cache-hot on its own core; a pin to a nonexistent
  /// CPU is ignored with a metric bump, never fatal.
  int pin_cpu = -1;
  /// Durability: every state-changing input (session open/close,
  /// submit, control, admission flips, clock steps, snapshot probes)
  /// is appended here, under the state lock and in mutation order —
  /// the write-ahead journal recovery replays (see recover/event.h).
  /// Not owned; must outlive the service or be detached via
  /// SetEventSink(nullptr) first. Null = no journaling.
  recover::EventSink* event_sink = nullptr;
};

class PiService {
 public:
  /// `catalog` must outlive the service. Starts the ticker thread
  /// unless `options.start_ticker` is false.
  explicit PiService(const storage::Catalog* catalog,
                     PiServiceOptions options = {});
  /// Stops the ticker. Open sessions must already be closed/destroyed.
  ~PiService();

  PiService(const PiService&) = delete;
  PiService& operator=(const PiService&) = delete;

  // ---- sessions -------------------------------------------------------------

  /// Opens a client session. The returned handle is safe to use from
  /// one client thread at a time; different sessions are independent.
  std::unique_ptr<Session> OpenSession(std::string name = "");

  // ---- ticker control -------------------------------------------------------

  /// Starts the ticker (and watchdog, when enabled) if not running
  /// (no-op in manual mode after the constructor already started it
  /// per options).
  void Start();
  /// Stops and joins the ticker and watchdog; queries keep their state
  /// and a final snapshot stays readable. Safe to call with queries
  /// still running.
  void Stop();
  bool ticking() const;

  /// Manual mode only: synchronously advance simulated time by `dt`,
  /// submitting due scheduled arrivals, feeding PIs, and publishing
  /// snapshots per quantum. FailedPrecondition while a ticker runs.
  Status Advance(SimTime dt);

  /// Manual mode convenience: Advance one quantum at a time until
  /// idle or `deadline` (simulated). Returns final simulated time.
  Result<SimTime> AdvanceUntilIdle(SimTime deadline = kInfiniteTime);

  /// Blocks the calling thread until the system is idle (no running,
  /// queued, or scheduled work) or `timeout` wall seconds elapse.
  /// Returns whether the system is idle. Ticker mode only.
  bool WaitUntilIdle(double timeout_seconds);

  // ---- reads (never block the ticker's Step) --------------------------------

  /// The latest published snapshot; never null (sequence 0 before the
  /// first tick). O(1): a shared_ptr copy under a pointer-only lock.
  SnapshotPtr snapshot() const;

  /// Builds and publishes a fresh snapshot without advancing time —
  /// lets manual-mode dashboards observe submissions and control
  /// operations between Advance() calls.
  void PublishNow();

  /// Builds a fresh snapshot from live state WITHOUT publishing it
  /// (sequence stays 0; readers never see it) — the checkpoint
  /// verification probe. Journaled as a kProbe event because building
  /// a snapshot advances the last-credible-ETA carry state, which
  /// replay must reproduce.
  SnapshotPtr BuildUnpublishedSnapshot();

  /// Attaches/detaches the event journal at runtime — recovery replays
  /// with the sink detached, then reattaches it. Serialized against
  /// every mutation on the state lock.
  void SetEventSink(recover::EventSink* sink);

  // ---- graceful drain -------------------------------------------------------

  /// Caller-supplied drain steps, run in order between "admissions
  /// closed" and "ticker stopped" (the service layer cannot encode
  /// wire frames or own the journal — the owner wires these).
  struct DrainHooks {
    /// Flush the journal and cut the final checkpoint.
    std::function<void()> flush;
    /// Notify subscribers the service is going away (goodbye frames).
    std::function<void()> goodbye;
  };

  /// Graceful shutdown, in this order: (1) new submissions fail with
  /// kUnavailable, (2) `flush` runs (journal + final checkpoint),
  /// (3) `goodbye` runs, (4) the ticker and watchdog stop. Counted in
  /// `service.drains` and captured as a flight-recorder dump.
  /// FailedPrecondition on a second call.
  Status Drain(const DrainHooks& hooks = {});
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Called with every published snapshot, after it is visible via
  /// snapshot(), outside all service locks — the network fan-out's
  /// feed. Must be O(1)-cheap (it runs on the ticker thread). Set to
  /// nullptr to detach; the caller must keep the hook's targets alive
  /// until after the detach returns.
  using PublishHook = std::function<void(const SnapshotPtr&)>;
  void SetPublishHook(PublishHook hook);

  /// §3 what-if evaluated against the live forecast: remaining time of
  /// `target` under the hypothetical scenario. Takes the state lock
  /// (cheap relative to a quantum, like session control calls).
  Result<SimTime> EstimateWhatIf(const pi::MultiQueryPi::WhatIf& scenario,
                                 QueryId target);

  MetricsRegistry* metrics() { return &metrics_; }

  /// Estimate-accuracy auditor (internally locked; reading its reports
  /// never touches the service's state lock).
  obs::EstimateAuditor* auditor() { return &auditor_; }
  const obs::EstimateAuditor* auditor() const { return &auditor_; }

  /// The process-wide tracer every subsystem records into. Enable with
  /// `tracer()->set_enabled(true)` before the run you want captured.
  obs::Tracer* tracer() { return tracer_; }

  /// The service's incident black box (internally locked).
  obs::FlightRecorder* flight_recorder() { return &flight_; }
  const obs::FlightRecorder* flight_recorder() const { return &flight_; }

  /// One liveness verdict shared by the ticker watchdog and the
  /// /healthz endpoint, so "healthy" means exactly one thing. Also
  /// refreshes the `service.uptime_quanta` and
  /// `service.ticker_last_step_age_quanta` gauges.
  struct Liveness {
    /// Work is pending (running, queued, or scheduled arrivals).
    bool busy = false;
    /// Wall seconds since the last snapshot publication.
    double since_publish_s = 0.0;
    /// Stall verdict boundary (watchdog threshold, pacing-adjusted).
    double stall_threshold_s = 0.0;
    /// since_publish_s expressed in expected tick periods.
    double age_quanta = 0.0;
    /// Quanta stepped since construction.
    std::uint64_t uptime_quanta = 0;
    bool stalled() const {
      return busy && since_publish_s > stall_threshold_s;
    }
  };
  Liveness CheckLiveness() const;

  const PiServiceOptions& options() const { return options_; }

  // ---- point-in-time engine reads (take the state lock) ---------------------

  SimTime now() const;
  bool Idle() const;
  /// Plan a spec without executing it (shell's `explain`).
  Result<std::string> Explain(const engine::QuerySpec& spec);
  /// Admission-queue gate (maintenance operation O1).
  void SetAdmissionOpen(bool open);

 private:
  friend class Session;

  struct SessionState {
    std::uint64_t id = 0;
    std::string name;
    std::unordered_set<QueryId> live;
    std::uint64_t submitted = 0;
    std::uint64_t finished = 0;
    std::uint64_t aborted = 0;
  };

  struct ScheduledSubmit {
    SimTime time = 0.0;
    std::uint64_t session_id = 0;
    engine::QuerySpec spec;
    Priority priority = Priority::kNormal;
  };
  struct ScheduledLater {
    bool operator()(const ScheduledSubmit& a,
                    const ScheduledSubmit& b) const {
      return a.time > b.time;  // min-heap on arrival time
    }
  };

  // Session-facing entry points (Session forwards here with its id).
  Result<QueryId> SessionSubmit(std::uint64_t session_id,
                                const engine::QuerySpec& spec,
                                Priority priority);
  Status SessionSubmitAt(std::uint64_t session_id, SimTime time,
                         engine::QuerySpec spec, Priority priority);
  Status SessionControl(std::uint64_t session_id, QueryId id,
                        sched::QueryEventKind op, Priority priority);
  Status CloseSession(std::uint64_t session_id);
  Result<std::uint64_t> SessionLiveCount(std::uint64_t session_id) const;

  // Requires state_mu_. Returns the session or nullptr.
  SessionState* FindSessionLocked(std::uint64_t session_id);
  // Requires state_mu_. Ownership check for control operations.
  Status CheckOwnedLocked(std::uint64_t session_id, QueryId id) const;

  // Requires state_mu_. Submits every scheduled arrival due at `now`.
  void SubmitDueArrivalsLocked();
  // Requires state_mu_. True when nothing can make progress.
  bool IdleLocked() const;

  // Steps one quantum (or `dt`) and publishes a snapshot. Grabs
  // state_mu_ itself.
  void StepAndPublish(SimTime dt);
  // Publication-delay degradation: re-publishes a copy of the current
  // snapshot with `age_quanta` bumped and the degraded flag applied
  // past the staleness threshold.
  void PublishStaleCopy();
  // Feeds a freshly built snapshot's rows to the auditor and publishes
  // accuracy metrics for queries that just completed. The auditor is
  // internally locked; called after state_mu_ is released.
  void FeedAuditor(const ProgressSnapshot& snapshot);
  void RecordAccuracyMetrics(const obs::QueryAccuracy& report);
  // Requires state_mu_.
  std::shared_ptr<ProgressSnapshot> BuildSnapshotLocked() const;
  void Publish(std::shared_ptr<ProgressSnapshot> snapshot);
  // Requires state_mu_. Appends to the journal when a sink is
  // attached; no-op otherwise.
  void AppendEventLocked(const recover::Event& event);

  void TickerLoop();
  void WatchdogLoop();
  // Spawn/kill just the ticker thread (both lock ticker_mu_). The
  // watchdog uses this pair to replace a stalled ticker without
  // touching the service-wide stop flag.
  void StartTickerThread();
  void StopTickerThread();
  // Requires ticker_mu_ and a joinable ticker_. Best-effort affinity.
  void PinTicker(int cpu);
  void NotifyWork();
  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }
  bool ticker_stop_requested() const {
    return ticker_stop_.load(std::memory_order_acquire);
  }

  const PiServiceOptions options_;

  // Engine + PI state; everything below state_mu_ is guarded by it.
  mutable std::mutex state_mu_;
  std::unique_ptr<sched::Rdbms> db_;
  std::unique_ptr<pi::FutureWorkloadModel> future_;
  std::unique_ptr<pi::PiManager> pis_;
  std::priority_queue<ScheduledSubmit, std::vector<ScheduledSubmit>,
                      ScheduledLater>
      arrivals_;
  std::unordered_map<std::uint64_t, SessionState> sessions_;
  std::unordered_map<QueryId, std::uint64_t> query_owner_;
  std::uint64_t next_session_id_ = 1;
  /// The attached journal (guarded by state_mu_; appends happen under
  /// it, in mutation order).
  recover::EventSink* event_sink_ = nullptr;
  /// Admissions gate: true once Drain() begins; submits fail with
  /// kUnavailable from then on.
  std::atomic<bool> draining_{false};

  // Published snapshot; snapshot_mu_ is held only for the pointer
  // copy/swap, never across engine work.
  mutable std::mutex snapshot_mu_;
  SnapshotPtr snapshot_;
  std::uint64_t published_ = 0;
  // Publish-hook slot; its own tiny lock so installing/clearing never
  // contends with snapshot reads.
  std::mutex hook_mu_;
  PublishHook publish_hook_;
  std::atomic<std::chrono::steady_clock::rep> publish_wall_ns_{0};

  // Ticker machinery. `stop_` stops the whole service; `ticker_stop_`
  // stops only the ticker thread (the watchdog's restart lever).
  // `ticker_mu_` guards the ticker thread object itself: the watchdog
  // and the owner thread (Start/Stop/Advance/ticking) both touch it.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::uint64_t work_epoch_ = 0;  // guarded by wake_mu_
  std::atomic<bool> stop_{false};
  std::atomic<bool> ticker_stop_{false};
  mutable std::mutex ticker_mu_;
  std::thread ticker_;  // guarded by ticker_mu_

  // Watchdog machinery (thread managed by Start/Stop only).
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  std::thread watchdog_;

  // Requires state_mu_. Publishes the PI forecast-cache deltas since
  // the last call into the hit/miss counters.
  void RecordForecastCacheMetricsLocked();
  // Requires state_mu_. Publishes PI degradation-counter deltas
  // (rate-floor clamps, corrupt window samples, degraded estimates)
  // and per-point fault-fire counts.
  void RecordDegradationMetricsLocked();

  MetricsRegistry metrics_;
  // Hot-path instruments, resolved once.
  Counter* quanta_stepped_;
  Counter* snapshots_published_;
  Counter* snapshot_reads_;
  Counter* forecast_cache_hit_;
  Counter* forecast_cache_miss_;
  Counter* incremental_fast_path_;
  Counter* incremental_fallback_;
  Counter* incremental_resyncs_;
  Counter* batch_kernel_hits_;
  Counter* batch_kernel_regens_;
  Counter* stale_snapshots_;
  Counter* watchdog_restarts_;
  Counter* submits_shed_;
  Counter* drains_;
  Counter* pin_misses_;
  Counter* degraded_estimates_;
  Counter* rate_floor_hits_;
  Counter* corrupt_rate_samples_;
  Gauge* uptime_quanta_gauge_;
  Gauge* ticker_age_quanta_gauge_;
  Histogram* step_wall_ms_;
  Histogram* snapshot_age_ms_;
  // Last PI cache totals already published (guarded by state_mu_).
  std::uint64_t seen_cache_hits_ = 0;
  std::uint64_t seen_cache_misses_ = 0;
  // Last PI incremental-engine totals already published (state_mu_).
  std::uint64_t seen_incremental_fast_path_ = 0;
  std::uint64_t seen_incremental_fallback_ = 0;
  std::uint64_t seen_incremental_resyncs_ = 0;
  std::uint64_t seen_batch_kernel_hits_ = 0;
  std::uint64_t seen_batch_kernel_regens_ = 0;
  // Last PI degradation totals already published (guarded by state_mu_).
  std::uint64_t seen_rate_floor_hits_ = 0;
  std::uint64_t seen_corrupt_rate_samples_ = 0;
  std::uint64_t seen_degraded_estimates_ = 0;
  // Last per-fault-point fire totals already published (state_mu_).
  std::unordered_map<const void*, std::uint64_t> seen_fault_fires_;

  // Last credible (finite, within-horizon) published ETA per live
  // query — the carry value when an estimator degrades. Guarded by
  // state_mu_; mutable because snapshot building is logically const.
  struct LastGoodEta {
    SimTime single = kUnknown;
    SimTime multi = kUnknown;
  };
  mutable std::unordered_map<QueryId, LastGoodEta> last_good_eta_;

  fault::FaultInjector* const fault_;  // == options_.fault, cached

  obs::EstimateAuditor auditor_;
  obs::Tracer* tracer_;  // the process-wide tracer, cached
  obs::FlightRecorder flight_;
};

}  // namespace mqpi::service
