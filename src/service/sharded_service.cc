#include "service/sharded_service.h"

#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "service/session.h"

namespace mqpi::service {

namespace {

// A shard with work in flight contributes to the global quiescence
// forecast; an idle shard (fresh, or fully drained) does not — its
// construction-time kUnknown must not poison a busy fleet's merge.
bool ShardBusy(const ProgressSnapshot& snap) {
  return snap.num_running + snap.num_queued + snap.num_blocked > 0;
}

}  // namespace

ShardedPiService::ShardedPiService(const storage::Catalog* catalog,
                                   ShardedPiServiceOptions options) {
  const int n = options.num_shards < 1 ? 1 : options.num_shards;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    PiShardOptions shard_options;
    shard_options.index = i;
    shard_options.service = options.shard;
    if (options.pin_cpus) {
      shard_options.service.pin_cpu = static_cast<int>(
          static_cast<unsigned>(i) % hw);
    }
    if (options.per_shard) options.per_shard(i, &shard_options.service);
    shards_.push_back(
        std::make_unique<PiShard>(catalog, std::move(shard_options)));
  }
  shards_gauge_ = metrics_.gauge("coord.shards");
  merges_ = metrics_.counter("coord.merges");
  rebalance_hints_ = metrics_.counter("coord.rebalance_hints");
  merge_ns_ = metrics_.histogram("coord.merge_ns");
  shards_gauge_->Set(static_cast<double>(shards_.size()));
}

ShardedPiService::ShardedPiService(std::vector<PiService*> recovered) {
  shards_.reserve(recovered.size());
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    shards_.push_back(
        std::make_unique<PiShard>(static_cast<int>(i), recovered[i]));
  }
  shards_gauge_ = metrics_.gauge("coord.shards");
  merges_ = metrics_.counter("coord.merges");
  rebalance_hints_ = metrics_.counter("coord.rebalance_hints");
  merge_ns_ = metrics_.histogram("coord.merge_ns");
  shards_gauge_->Set(static_cast<double>(shards_.size()));
}

ShardedPiService::~ShardedPiService() { Stop(); }

std::unique_ptr<Session> ShardedPiService::OpenSession(std::string name,
                                                       int* shard_out) {
  const int shard = Route(name);
  if (shard_out != nullptr) *shard_out = shard;
  return shard_service(shard)->OpenSession(std::move(name));
}

SnapshotPtr ShardedPiService::GlobalSnapshot() {
  std::vector<SnapshotPtr> latests;
  latests.reserve(shards_.size());
  for (auto& shard : shards_) latests.push_back(shard->service()->snapshot());

  std::lock_guard<std::mutex> lock(merge_mu_);
  // shared_ptr equality is pointer equality: the cache hits exactly
  // when no shard has published since the last merge.
  if (merged_ != nullptr && latests == merge_key_) return merged_;

  const auto t0 = std::chrono::steady_clock::now();
  merged_ = Merge(latests);
  merge_key_ = std::move(latests);
  merges_->Increment();
  merge_ns_->Observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));

  // Load-skew hint: a shard carrying more than double the mean live
  // load (with a +1 deadband so tiny fleets don't flap) suggests the
  // router's tenant mix has gone lopsided. The counter is the signal a
  // future rebalancer (ROADMAP) would consume.
  int total = 0;
  int busiest = 0;
  for (const ShardLoad& load : merged_->shard_loads) {
    const int busy = load.num_running + load.num_queued;
    total += busy;
    if (busy > busiest) busiest = busy;
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(shards_.size());
  if (shards_.size() > 1 && busiest > 2.0 * mean + 1.0) {
    rebalance_hints_->Increment();
  }
  return merged_;
}

SnapshotPtr ShardedPiService::MergeNow() {
  std::vector<SnapshotPtr> latests;
  latests.reserve(shards_.size());
  for (auto& shard : shards_) latests.push_back(shard->service()->snapshot());
  return Merge(latests);
}

std::shared_ptr<ProgressSnapshot> ShardedPiService::Merge(
    const std::vector<SnapshotPtr>& latests) const {
  auto out = std::make_shared<ProgressSnapshot>();
  std::size_t total_rows = 0;
  for (const SnapshotPtr& snap : latests) total_rows += snap->queries.size();
  out->queries.reserve(total_rows);
  out->shard_loads.reserve(latests.size());

  SimTime quiesce_abs = 0.0;
  bool quiesce_unknown = false;
  bool quiesce_infinite = false;
  bool any_busy = false;

  for (std::size_t i = 0; i < latests.size(); ++i) {
    const ProgressSnapshot& snap = *latests[i];
    const int shard = static_cast<int>(i);
    out->sequence += snap.sequence;
    if (snap.sim_time > out->sim_time) out->sim_time = snap.sim_time;
    out->num_running += snap.num_running;
    out->num_queued += snap.num_queued;
    out->num_blocked += snap.num_blocked;
    out->measured_rate += snap.measured_rate;
    if (snap.age_quanta > out->age_quanta) out->age_quanta = snap.age_quanta;
    out->degraded = out->degraded || snap.degraded;

    if (ShardBusy(snap)) {
      any_busy = true;
      if (snap.quiescent_eta < 0.0) {
        quiesce_unknown = true;  // kUnknown sentinel
      } else if (std::isinf(snap.quiescent_eta)) {
        quiesce_infinite = true;
      } else {
        const SimTime abs_eta = snap.sim_time + snap.quiescent_eta;
        if (abs_eta > quiesce_abs) quiesce_abs = abs_eta;
      }
    }

    for (const QueryProgress& q : snap.queries) {
      out->queries.push_back(q);
      QueryProgress& row = out->queries.back();
      row.id = GlobalId(shard, q.id);
      row.session_id = GlobalId(shard, q.session_id);
    }

    ShardLoad load;
    load.shard = shard;
    load.sequence = snap.sequence;
    load.sim_time = snap.sim_time;
    load.num_running = snap.num_running;
    load.num_queued = snap.num_queued;
    load.measured_rate = snap.measured_rate;
    load.quiescent_eta = snap.quiescent_eta;
    load.degraded = snap.degraded;
    out->shard_loads.push_back(load);
  }

  if (!any_busy) {
    out->quiescent_eta = 0.0;
  } else if (quiesce_unknown) {
    out->quiescent_eta = kUnknown;
  } else if (quiesce_infinite) {
    out->quiescent_eta = kInfiniteTime;
  } else {
    const SimTime rel = quiesce_abs - out->sim_time;
    out->quiescent_eta = rel > 0.0 ? rel : 0.0;
  }
  return out;
}

Result<SimTime> ShardedPiService::EstimateWhatIf(
    const pi::MultiQueryPi::WhatIf& scenario, std::uint64_t global_target) {
  const int shard = ShardOfGlobalId(global_target);
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument("what-if target id names shard " +
                                   std::to_string(shard) + " of " +
                                   std::to_string(num_shards()));
  }
  pi::MultiQueryPi::WhatIf local;
  local.blocked.reserve(scenario.blocked.size());
  local.aborted.reserve(scenario.aborted.size());
  local.reweighted.reserve(scenario.reweighted.size());
  for (QueryId id : scenario.blocked) {
    if (ShardOfGlobalId(id) != shard) {
      return Status::InvalidArgument(
          "cross-shard what-if: blocked id on another shard");
    }
    local.blocked.push_back(LocalIdOf(id));
  }
  for (QueryId id : scenario.aborted) {
    if (ShardOfGlobalId(id) != shard) {
      return Status::InvalidArgument(
          "cross-shard what-if: aborted id on another shard");
    }
    local.aborted.push_back(LocalIdOf(id));
  }
  for (const auto& [id, weight] : scenario.reweighted) {
    if (ShardOfGlobalId(id) != shard) {
      return Status::InvalidArgument(
          "cross-shard what-if: reweighted id on another shard");
    }
    local.reweighted.emplace_back(LocalIdOf(id), weight);
  }
  return shard_service(shard)->EstimateWhatIf(local, LocalIdOf(global_target));
}

void ShardedPiService::Start() {
  for (auto& shard : shards_) shard->service()->Start();
}

void ShardedPiService::Stop() {
  for (auto& shard : shards_) shard->service()->Stop();
}

bool ShardedPiService::WaitUntilIdle(double timeout_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  for (auto& shard : shards_) {
    const double remaining =
        std::chrono::duration<double>(deadline -
                                      std::chrono::steady_clock::now())
            .count();
    if (remaining <= 0.0) return false;
    if (!shard->service()->WaitUntilIdle(remaining)) return false;
  }
  return true;
}

Status ShardedPiService::Drain(const DrainHooks& hooks) {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return Status::FailedPrecondition("drain already in progress");
  }
  // One thread per shard: each shard's drain closes its own
  // admissions, flushes its own journal, and stops its own ticker.
  // Wall time is max(shard drains), which the regression test asserts.
  std::vector<Status> statuses(shards_.size());
  std::vector<std::thread> drains;
  drains.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    drains.emplace_back([this, &hooks, &statuses, i] {
      PiService::DrainHooks shard_hooks;
      if (hooks.flush) {
        const int shard = static_cast<int>(i);
        shard_hooks.flush = [&hooks, shard] { hooks.flush(shard); };
      }
      statuses[i] = shard_service(static_cast<int>(i))->Drain(shard_hooks);
    });
  }
  for (std::thread& t : drains) t.join();
  // Goodbye once, after every shard has flushed and stopped — the
  // network edge broadcasts it to all connections regardless of which
  // shard they were scoped to.
  if (hooks.goodbye) hooks.goodbye();
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

ShardedPiService::GlobalLiveness ShardedPiService::CheckLiveness() const {
  GlobalLiveness global;
  global.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    global.shards.push_back(shard->service()->CheckLiveness());
    const PiService::Liveness& live = global.shards.back();
    global.any_stalled = global.any_stalled || live.stalled();
    if (live.busy) ++global.busy_shards;
  }
  return global;
}

}  // namespace mqpi::service
