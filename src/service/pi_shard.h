// PiShard: one slice of a sharded PI deployment — a single
// Rdbms + MultiQueryPi + ticker thread with its own snapshot
// publication, metrics registry, fault scope, and (when recovered)
// journal directory.
//
// A shard is deliberately nothing more than a PiService plus an index:
// every per-scheduler invariant the service layer already proves
// (pointer-only snapshot lock, O(1) publish hook, watchdog, drain
// ordering) holds per shard with zero new machinery. What the shard
// adds is identity — the index that the coordinator uses to route
// sessions, remap query ids into the global id space, and label
// metrics — and optional core pinning so each scheduler's ticker stays
// cache-hot on its own CPU.
//
// Shards never talk to each other. All cross-shard state lives in
// ShardedPiService (see service/sharded_service.h), which only ever
// reads the shards' immutable latest-snapshot pointers.
#pragma once

#include <memory>

#include "service/pi_service.h"

namespace mqpi::service {

struct PiShardOptions {
  /// Shard index in [0, num_shards); also the high bits of every
  /// global query/session id this shard's queries get (see
  /// sharded_service.h).
  int index = 0;
  /// Per-shard service configuration. `pin_cpu` inside it pins the
  /// shard's ticker thread; the coordinator fills it when its
  /// `pin_cpus` knob is on.
  PiServiceOptions service;
};

class PiShard {
 public:
  /// Owning construction: the shard builds and owns its PiService.
  PiShard(const storage::Catalog* catalog, PiShardOptions options)
      : index_(options.index),
        owned_(std::make_unique<PiService>(catalog,
                                           std::move(options.service))),
        service_(owned_.get()) {}

  /// Borrowing construction (recovery adoption): the service was
  /// rebuilt by recover::Recover and is owned elsewhere; it must
  /// outlive the shard.
  PiShard(int index, PiService* adopted)
      : index_(index), service_(adopted) {}

  PiShard(const PiShard&) = delete;
  PiShard& operator=(const PiShard&) = delete;
  PiShard(PiShard&&) = default;
  PiShard& operator=(PiShard&&) = default;

  int index() const { return index_; }
  PiService* service() { return service_; }
  const PiService* service() const { return service_; }

 private:
  int index_ = 0;
  std::unique_ptr<PiService> owned_;  // null when borrowing
  PiService* service_ = nullptr;
};

}  // namespace mqpi::service
