// Session: one client's handle onto a PiService.
//
// A session owns the queries it submits: control operations (Block/
// Resume/Abort/SetPriority) are accepted only for that session's own
// queries, and the service keeps per-session admission accounting
// (live-query count, optional inflight cap, submit/finish/abort
// totals — surfaced through the metrics registry).
//
// Progress reads are served from the latest published snapshot and
// never touch the engine lock, so a client can poll as fast as it
// likes. Reads are not restricted to owned queries — progress data is
// not secret; ownership only gates *control*.
//
// Thread-safety: one session may be driven by one client thread at a
// time; use separate sessions for separate client threads (sessions
// are what the stress test hands to each writer thread). A Session
// must not outlive its PiService.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "engine/planner.h"
#include "service/snapshot.h"

namespace mqpi::service {

class PiService;

class Session {
 public:
  /// Closes the session (see Close()).
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  std::uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  // ---- admission ------------------------------------------------------------

  /// Plans and submits a query now; it is owned by this session.
  /// FailedPrecondition when the session is closed or at its inflight
  /// cap; ResourceExhausted when the service sheds the submit because
  /// the admission queue is at its configured bound.
  Result<QueryId> Submit(const engine::QuerySpec& spec,
                         Priority priority = Priority::kNormal);

  /// Schedules a submission at absolute simulated time `time` (past
  /// times submit on the next tick). The ticker performs the actual
  /// submit; the query then belongs to this session. Used to replay
  /// workload arrival schedules as live service traffic.
  Status SubmitAt(SimTime time, engine::QuerySpec spec,
                  Priority priority = Priority::kNormal);

  /// Number of this session's queries not yet finished or aborted
  /// (scheduled-but-not-yet-submitted arrivals do not count).
  std::uint64_t LiveQueries() const;

  // ---- progress (snapshot reads; never block the ticker) --------------------

  /// Progress of any query in the latest snapshot (not just owned
  /// ones). NotFound if the id has never been seen by a snapshot.
  Result<QueryProgress> Progress(QueryId id) const;

  /// This session's queries in the latest snapshot, sorted by id
  /// (terminal queries included).
  std::vector<QueryProgress> ListQueries() const;

  /// The whole latest snapshot (dashboards).
  SnapshotPtr snapshot() const;

  // ---- control (owned queries only) -----------------------------------------

  Status Block(QueryId id);
  Status Resume(QueryId id);
  Status Abort(QueryId id);
  Status SetPriority(QueryId id, Priority priority);

  /// Idempotent. Drops scheduled arrivals and (by service option)
  /// aborts still-live queries, then detaches from the service.
  Status Close();

 private:
  friend class PiService;
  Session(PiService* service, std::uint64_t id, std::string name);

  PiService* service_;
  std::uint64_t id_;
  std::string name_;
  std::atomic<bool> closed_{false};
};

}  // namespace mqpi::service
