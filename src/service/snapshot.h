// ProgressSnapshot: the immutable, point-in-time view of the whole
// system that the PI service publishes after every quantum.
//
// The ticker thread builds a fresh snapshot while it holds the engine
// lock, then swaps it in under a separate pointer lock. Readers
// (Session::Progress, dashboards, workload managers) grab a
// `shared_ptr<const ProgressSnapshot>` and work on it without ever
// touching the engine — the read path takes no lock that is held during
// `Rdbms::Step`, so estimate consumers can poll at any rate without
// slowing execution down. Sequence numbers increase by exactly one per
// published snapshot, which is what the stress test uses to prove reads
// are never torn.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/priority.h"
#include "common/units.h"
#include "sched/rdbms.h"

namespace mqpi::service {

/// Everything a client may want to know about one query, fused from the
/// scheduler's observables and both progress indicators.
struct QueryProgress {
  QueryId id = kInvalidQueryId;
  /// Owning session (0 for queries submitted outside the service API).
  std::uint64_t session_id = 0;
  std::string label;
  sched::QueryState state = sched::QueryState::kQueued;
  Priority priority = Priority::kNormal;
  double weight = 1.0;
  WorkUnits completed_work = 0.0;
  WorkUnits remaining_cost = 0.0;
  /// completed / (completed + remaining), in [0, 1]; 1 once finished.
  double fraction_done = 0.0;
  /// Smoothed observed speed (U/s); 0 until the single-query PI warms.
  double speed = 0.0;
  /// Single-query PI ETA (t = c/s); kUnknown without an observation
  /// history, kInfiniteTime while blocked.
  SimTime eta_single = kUnknown;
  /// Multi-query PI ETA r_i (paper §2); kUnknown when no forecast
  /// covers the query, kInfiniteTime while blocked or past horizon.
  SimTime eta_multi = kUnknown;
  /// 0-based position in the admission queue; -1 unless queued.
  int queue_position = -1;
  SimTime arrival_time = 0.0;
  SimTime start_time = kUnknown;
  SimTime finish_time = kUnknown;
  /// An estimator produced a non-credible value (NaN, negative,
  /// infinite or beyond-horizon for a non-blocked query) and the
  /// published ETA is a degraded stand-in: the last credible estimate
  /// if one exists, kUnknown otherwise.
  bool degraded = false;

  bool terminal() const {
    return state == sched::QueryState::kFinished ||
           state == sched::QueryState::kAborted;
  }
};

/// Per-shard load gauge embedded in a merged (coordinator) snapshot so
/// global readers can see the shape of the fleet without N extra RPCs.
/// Single-shard snapshots leave `shard_loads` empty.
struct ShardLoad {
  int shard = 0;
  /// The shard-local sequence this row was merged from.
  std::uint64_t sequence = 0;
  SimTime sim_time = 0.0;
  int num_running = 0;
  int num_queued = 0;
  double measured_rate = 0.0;
  /// Shard-local quiescent ETA relative to the shard's sim_time.
  SimTime quiescent_eta = kUnknown;
  bool degraded = false;
};

struct ProgressSnapshot {
  /// Increases by exactly 1 per published snapshot, starting at 1 (the
  /// service publishes an empty snapshot 0 on construction).
  std::uint64_t sequence = 0;
  /// Simulated time the snapshot was taken at.
  SimTime sim_time = 0.0;
  int num_running = 0;
  int num_queued = 0;
  int num_blocked = 0;
  /// Aggregate rate the multi-query PI has measured (U/s).
  double measured_rate = 0.0;
  /// Forecast system quiescent time (§3.3), relative to sim_time;
  /// kUnknown when the forecast failed, kInfiniteTime past horizon.
  SimTime quiescent_eta = kUnknown;
  /// Quanta executed since this snapshot's content was built. 0 for a
  /// fresh snapshot; grows when publication is delayed (fault/outage)
  /// and the service re-publishes the previous content.
  int age_quanta = 0;
  /// Content is at least `stale_snapshot_quanta` quanta old — readers
  /// should treat every estimate in it as suspect.
  bool degraded = false;
  /// All queries ever submitted, sorted by id (terminal ones included
  /// so sessions can observe their final states).
  std::vector<QueryProgress> queries;
  /// Non-empty only on coordinator-merged snapshots: one row per
  /// shard, in shard order (see service/sharded_service.h).
  std::vector<ShardLoad> shard_loads;

  /// Binary search by id; nullptr if the id is not in this snapshot.
  const QueryProgress* Find(QueryId id) const {
    auto it = std::lower_bound(
        queries.begin(), queries.end(), id,
        [](const QueryProgress& q, QueryId key) { return q.id < key; });
    return it != queries.end() && it->id == id ? &*it : nullptr;
  }
};

using SnapshotPtr = std::shared_ptr<const ProgressSnapshot>;

}  // namespace mqpi::service
