#include "service/traffic.h"

#include "service/session.h"

namespace mqpi::service {

Status ReplaySchedule(Session* session,
                      const workload::ZipfWorkload& workload,
                      const std::vector<workload::ScheduledArrival>& schedule,
                      Priority priority) {
  for (const auto& arrival : schedule) {
    MQPI_RETURN_NOT_OK(session->SubmitAt(
        arrival.time, workload.SpecForRank(arrival.rank), priority));
  }
  return Status::OK();
}

}  // namespace mqpi::service
