#include "service/pi_service.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "fault/fault_injector.h"
#include "obs/profiler.h"
#include "service/session.h"

namespace mqpi::service {

namespace {

using WallClock = std::chrono::steady_clock;

double MsSince(WallClock::time_point start) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - start)
      .count();
}

pi::PiManagerOptions ForceAutoTrack(pi::PiManagerOptions options) {
  options.auto_track = true;
  return options;
}

/// The scheduler stamps finish times at quantum ends and estimates are
/// sampled once per published snapshot, so truth and estimate are each
/// only known to quantum resolution; score only the error above that.
obs::AuditorOptions ResolveAuditorOptions(const PiServiceOptions& options) {
  obs::AuditorOptions resolved = options.auditor;
  if (resolved.truth_resolution <= 0.0) {
    resolved.truth_resolution = 2.0 * options.rdbms.quantum;
  }
  return resolved;
}

/// Relative-error boundaries for the accuracy histograms: MAPE lives
/// in [0, a few], not in millisecond space.
std::vector<double> MapeBounds() {
  return {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0};
}

/// Signed bias needs room below zero (optimistic underestimates).
std::vector<double> BiasBounds() {
  return {-1.0, -0.5, -0.2, -0.05, 0.0, 0.05, 0.2, 0.5, 1.0, 2.0};
}

}  // namespace

PiService::PiService(const storage::Catalog* catalog, PiServiceOptions options)
    : options_(std::move(options)),
      db_(std::make_unique<sched::Rdbms>(catalog, options_.rdbms)),
      fault_(options_.fault),
      auditor_(ResolveAuditorOptions(options_)),
      tracer_(obs::GlobalTracer()),
      flight_(options_.flight_recorder) {
  if (options_.enable_profiler) obs::GlobalProfiler()->set_enabled(true);
  if (options_.future_prior.lambda > 0.0 ||
      options_.future_prior_strength > 0.0) {
    future_ = options_.future_prior_strength > 0.0
                  ? std::make_unique<pi::FutureWorkloadModel>(
                        options_.future_prior, options_.future_prior_strength)
                  : std::make_unique<pi::FutureWorkloadModel>(
                        options_.future_prior);
  }
  pis_ = std::make_unique<pi::PiManager>(
      db_.get(), ForceAutoTrack(options_.pi), future_.get());
  if (fault_ != nullptr) {
    db_->SetFaultInjector(fault_);
    pis_->SetFaultInjector(fault_);
  }

  // Accounting hook: runs under state_mu_ (every Rdbms mutation goes
  // through a service method that holds it).
  db_->AddEventListener([this](const sched::QueryEvent& event) {
    switch (event.kind) {
      case sched::QueryEventKind::kStarted:
        metrics_.counter("queries.admitted")->Increment();
        break;
      case sched::QueryEventKind::kFinished:
      case sched::QueryEventKind::kAborted: {
        const bool finished =
            event.kind == sched::QueryEventKind::kFinished;
        metrics_.counter(finished ? "queries.finished" : "queries.aborted")
            ->Increment();
        auto owner = query_owner_.find(event.info.id);
        if (owner != query_owner_.end()) {
          auto session = sessions_.find(owner->second);
          if (session != sessions_.end()) {
            session->second.live.erase(event.info.id);
            if (finished) {
              ++session->second.finished;
            } else {
              ++session->second.aborted;
            }
          }
        }
        break;
      }
      default:
        break;
    }
  });

  quanta_stepped_ = metrics_.counter("service.quanta_stepped");
  snapshots_published_ = metrics_.counter("service.snapshots_published");
  snapshot_reads_ = metrics_.counter("service.snapshot_reads");
  forecast_cache_hit_ = metrics_.counter("pi.forecast_cache_hit");
  forecast_cache_miss_ = metrics_.counter("pi.forecast_cache_miss");
  incremental_fast_path_ = metrics_.counter("pi.incremental_fast_path");
  incremental_fallback_ = metrics_.counter("pi.incremental_fallback");
  incremental_resyncs_ = metrics_.counter("pi.incremental_resyncs");
  batch_kernel_hits_ = metrics_.counter("pi.batch_kernel_hits");
  batch_kernel_regens_ = metrics_.counter("pi.batch_kernel_regens");
  stale_snapshots_ = metrics_.counter("service.stale_snapshots");
  watchdog_restarts_ = metrics_.counter("service.watchdog_restarts");
  submits_shed_ = metrics_.counter("service.submits_shed");
  drains_ = metrics_.counter("service.drains");
  pin_misses_ = metrics_.counter("service.ticker_pin_misses");
  degraded_estimates_ = metrics_.counter("pi.degraded_estimates");
  rate_floor_hits_ = metrics_.counter("pi.rate_floor_hits");
  corrupt_rate_samples_ = metrics_.counter("pi.corrupt_rate_samples");
  uptime_quanta_gauge_ = metrics_.gauge("service.uptime_quanta");
  ticker_age_quanta_gauge_ =
      metrics_.gauge("service.ticker_last_step_age_quanta");
  step_wall_ms_ = metrics_.histogram("step.wall_ms");
  snapshot_age_ms_ = metrics_.histogram("snapshot.age_ms");

  event_sink_ = options_.event_sink;

  // Sequence-0 snapshot so snapshot() is never null.
  snapshot_ = std::make_shared<ProgressSnapshot>();
  publish_wall_ns_.store(
      WallClock::now().time_since_epoch().count(),
      std::memory_order_release);

  if (options_.start_ticker) Start();
}

PiService::~PiService() { Stop(); }

// ---- sessions ---------------------------------------------------------------

void PiService::AppendEventLocked(const recover::Event& event) {
  if (event_sink_ != nullptr) event_sink_->Append(event);
}

void PiService::SetEventSink(recover::EventSink* sink) {
  std::lock_guard<std::mutex> lock(state_mu_);
  event_sink_ = sink;
}

std::unique_ptr<Session> PiService::OpenSession(std::string name) {
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    id = next_session_id_++;
    SessionState state;
    state.id = id;
    state.name = name;
    sessions_.emplace(id, std::move(state));
    recover::Event event;
    event.kind = recover::EventKind::kSessionOpen;
    event.session_id = id;
    event.name = name;
    AppendEventLocked(event);
  }
  metrics_.counter("sessions.opened")->Increment();
  return std::unique_ptr<Session>(new Session(this, id, std::move(name)));
}

PiService::SessionState* PiService::FindSessionLocked(
    std::uint64_t session_id) {
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : &it->second;
}

Status PiService::CheckOwnedLocked(std::uint64_t session_id,
                                   QueryId id) const {
  auto it = query_owner_.find(id);
  if (it == query_owner_.end()) {
    return Status::NotFound("query " + std::to_string(id) +
                            " unknown to the service");
  }
  if (it->second != session_id) {
    return Status::FailedPrecondition(
        "query " + std::to_string(id) + " belongs to session " +
        std::to_string(it->second) + ", not session " +
        std::to_string(session_id));
  }
  return Status::OK();
}

Result<QueryId> PiService::SessionSubmit(std::uint64_t session_id,
                                         const engine::QuerySpec& spec,
                                         Priority priority) {
  if (draining()) {
    return Status::Unavailable("service is draining; submissions closed");
  }
  QueryId id;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    SessionState* session = FindSessionLocked(session_id);
    if (session == nullptr) {
      return Status::FailedPrecondition("session closed");
    }
    if (options_.max_inflight_per_session > 0 &&
        session->live.size() >= options_.max_inflight_per_session) {
      metrics_.counter("service.submit_rejected")->Increment();
      return Status::FailedPrecondition(
          "session " + std::to_string(session_id) + " is at its inflight "
          "cap of " + std::to_string(options_.max_inflight_per_session));
    }
    // Overload shedding: a bounded admission queue rejects rather than
    // letting a flooded service grow its backlog (and its snapshot and
    // forecast cost) without limit.
    if (options_.max_queued_queries > 0 &&
        static_cast<std::uint64_t>(db_->num_queued()) >=
            options_.max_queued_queries) {
      submits_shed_->Increment();
      return Status::ResourceExhausted(
          "admission queue is at its cap of " +
          std::to_string(options_.max_queued_queries) + " queries");
    }
    auto submitted = db_->Submit(spec, priority);
    if (!submitted.ok()) {
      metrics_.counter("service.submit_errors")->Increment();
      return submitted.status();
    }
    id = *submitted;
    session->live.insert(id);
    ++session->submitted;
    query_owner_[id] = session_id;
    metrics_.counter("service.submits")->Increment();
    recover::Event event;
    event.kind = recover::EventKind::kSubmit;
    event.session_id = session_id;
    event.query_id = id;  // replay verifies the engine re-assigns it
    event.spec = spec;
    event.priority = priority;
    AppendEventLocked(event);
  }
  if (tracer_->enabled()) {
    tracer_->Instant("service", "session_submit", id, "session",
                     static_cast<double>(session_id));
  }
  NotifyWork();
  return id;
}

Status PiService::SessionSubmitAt(std::uint64_t session_id, SimTime time,
                                  engine::QuerySpec spec, Priority priority) {
  if (draining()) {
    return Status::Unavailable("service is draining; submissions closed");
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (FindSessionLocked(session_id) == nullptr) {
      return Status::FailedPrecondition("session closed");
    }
    if (options_.max_pending_arrivals > 0 &&
        static_cast<std::uint64_t>(arrivals_.size()) >=
            options_.max_pending_arrivals) {
      submits_shed_->Increment();
      return Status::ResourceExhausted(
          "scheduled-arrival backlog is at its cap of " +
          std::to_string(options_.max_pending_arrivals));
    }
    recover::Event event;
    event.kind = recover::EventKind::kSubmitAt;
    event.session_id = session_id;
    event.time = time;
    event.spec = spec;
    event.priority = priority;
    AppendEventLocked(event);
    ScheduledSubmit arrival;
    arrival.time = time;
    arrival.session_id = session_id;
    arrival.spec = std::move(spec);
    arrival.priority = priority;
    arrivals_.push(std::move(arrival));
    metrics_.counter("service.scheduled_arrivals")->Increment();
  }
  NotifyWork();
  return Status::OK();
}

Status PiService::SessionControl(std::uint64_t session_id, QueryId id,
                                 sched::QueryEventKind op,
                                 Priority priority) {
  Status status;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (FindSessionLocked(session_id) == nullptr) {
      return Status::FailedPrecondition("session closed");
    }
    MQPI_RETURN_NOT_OK(CheckOwnedLocked(session_id, id));
    if (fault_ != nullptr && fault_->enabled() &&
        fault_->ShouldFire(fault::kServiceSessionControlFail)) {
      return Status::Internal("injected fault: session control failed");
    }
    switch (op) {
      case sched::QueryEventKind::kBlocked:
        status = db_->Block(id);
        if (status.ok()) metrics_.counter("service.blocks")->Increment();
        break;
      case sched::QueryEventKind::kResumed:
        status = db_->Resume(id);
        if (status.ok()) metrics_.counter("service.resumes")->Increment();
        break;
      case sched::QueryEventKind::kAborted:
        status = db_->Abort(id);
        if (status.ok()) {
          metrics_.counter("service.aborts_requested")->Increment();
        }
        break;
      case sched::QueryEventKind::kPriorityChanged:
        status = db_->SetPriority(id, priority);
        break;
      default:
        status = Status::InvalidArgument("unsupported session operation");
        break;
    }
    if (status.ok()) {
      recover::Event event;
      event.kind = recover::EventKind::kControl;
      event.session_id = session_id;
      event.query_id = id;
      event.op = op;
      event.priority = priority;
      AppendEventLocked(event);
    }
  }
  // A resume can wake an otherwise-idle (all-blocked) system.
  if (status.ok() && op == sched::QueryEventKind::kResumed) NotifyWork();
  return status;
}

Status PiService::CloseSession(std::uint64_t session_id) {
  std::lock_guard<std::mutex> lock(state_mu_);
  SessionState* session = FindSessionLocked(session_id);
  if (session == nullptr) return Status::OK();  // idempotent

  {
    recover::Event event;
    event.kind = recover::EventKind::kSessionClose;
    event.session_id = session_id;
    AppendEventLocked(event);
  }

  // Drop this session's scheduled arrivals.
  if (!arrivals_.empty()) {
    std::vector<ScheduledSubmit> keep;
    keep.reserve(arrivals_.size());
    while (!arrivals_.empty()) {
      if (arrivals_.top().session_id != session_id) {
        keep.push_back(arrivals_.top());
      }
      arrivals_.pop();
    }
    for (auto& arrival : keep) arrivals_.push(std::move(arrival));
  }

  if (options_.abort_queries_on_session_close) {
    // Abort fires the event listener, which mutates session->live —
    // iterate a copy.
    const std::vector<QueryId> live(session->live.begin(),
                                    session->live.end());
    for (QueryId id : live) {
      const Status status = db_->Abort(id);
      (void)status;  // already-terminal races are fine
    }
  }
  sessions_.erase(session_id);
  metrics_.counter("sessions.closed")->Increment();
  return Status::OK();
}

Result<std::uint64_t> PiService::SessionLiveCount(
    std::uint64_t session_id) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::FailedPrecondition("session closed");
  }
  return static_cast<std::uint64_t>(it->second.live.size());
}

// ---- stepping ---------------------------------------------------------------

void PiService::SubmitDueArrivalsLocked() {
  while (!arrivals_.empty() &&
         arrivals_.top().time <= db_->now() + kTimeEpsilon) {
    ScheduledSubmit arrival = arrivals_.top();
    arrivals_.pop();
    SessionState* session = FindSessionLocked(arrival.session_id);
    if (session == nullptr) continue;  // closed since scheduling
    if (options_.max_queued_queries > 0 &&
        static_cast<std::uint64_t>(db_->num_queued()) >=
            options_.max_queued_queries) {
      // The admission queue is full at the arrival's due time: shed it,
      // same as a live Submit would have been.
      submits_shed_->Increment();
      continue;
    }
    auto submitted = db_->Submit(arrival.spec, arrival.priority);
    if (!submitted.ok()) {
      metrics_.counter("service.submit_errors")->Increment();
      continue;
    }
    session->live.insert(*submitted);
    ++session->submitted;
    query_owner_[*submitted] = arrival.session_id;
    metrics_.counter("service.submits")->Increment();
  }
}

bool PiService::IdleLocked() const { return db_->Idle() && arrivals_.empty(); }

void PiService::StepAndPublish(SimTime dt) {
  MQPI_PROF_SITE(prof, "service.step_quantum");
  obs::TraceSpan span(tracer_, "service", "step_and_publish");
  const auto start = WallClock::now();
  std::shared_ptr<ProgressSnapshot> snapshot;
  bool delayed = false;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    {
      recover::Event event;
      event.kind = recover::EventKind::kStep;
      event.time = dt;
      AppendEventLocked(event);
    }
    SubmitDueArrivalsLocked();
    db_->Step(dt);
    pis_->AfterStep();
    delayed = fault_ != nullptr && fault_->enabled() &&
              fault_->ShouldFire(fault::kServicePublishDelay);
    if (!delayed) {
      snapshot = BuildSnapshotLocked();
      metrics_.gauge("queries.running")->Set(snapshot->num_running);
      metrics_.gauge("queries.queued")->Set(snapshot->num_queued);
      metrics_.gauge("queries.blocked")->Set(snapshot->num_blocked);
      metrics_.gauge("service.sim_time")->Set(snapshot->sim_time);
    }
    RecordForecastCacheMetricsLocked();
    RecordDegradationMetricsLocked();
  }
  if (delayed) {
    // Publication is down this quantum: readers keep the previous
    // content, but honestly tagged with its age (and, past the
    // threshold, a degraded flag) instead of silently frozen.
    PublishStaleCopy();
  } else {
    span.arg("t", snapshot->sim_time);
    span.arg("queries", static_cast<double>(snapshot->queries.size()));
    // Stale re-publications never reach the auditor — scoring the same
    // estimates twice would double-count trajectory samples.
    if (options_.enable_auditor) FeedAuditor(*snapshot);
    Publish(std::move(snapshot));
  }
  quanta_stepped_->Increment();
  uptime_quanta_gauge_->Set(static_cast<double>(quanta_stepped_->value()));
  const double step_ms = MsSince(start);
  step_wall_ms_->Observe(step_ms);
  if (flight_.enabled()) {
    flight_.Record(obs::FlightEventKind::kSpan, "service", "step_quantum",
                   step_ms * 1e6);
  }
}

void PiService::PublishStaleCopy() {
  SnapshotPtr last;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    last = snapshot_;
  }
  if (!MQPI_DCHECK(last != nullptr)) return;
  auto stale = std::make_shared<ProgressSnapshot>(*last);
  stale->age_quanta = last->age_quanta + 1;
  stale->degraded = stale->age_quanta >= options_.stale_snapshot_quanta;
  stale_snapshots_->Increment();
  if (tracer_->enabled()) {
    tracer_->Instant("service", "stale_snapshot", kInvalidQueryId, "age",
                     static_cast<double>(stale->age_quanta));
  }
  if (flight_.enabled()) {
    flight_.Record(obs::FlightEventKind::kNote, "service", "stale_snapshot",
                   static_cast<double>(stale->age_quanta));
  }
  const bool degraded = stale->degraded;
  Publish(std::move(stale));
  // The black-box moment: publication has been stale long enough to be
  // flagged untrustworthy. Preserve the window leading up to it.
  if (degraded) flight_.Trigger("degraded_publish");
}

void PiService::FeedAuditor(const ProgressSnapshot& snapshot) {
  for (const QueryProgress& query : snapshot.queries) {
    obs::EstimateObservation observation;
    observation.id = query.id;
    observation.time = snapshot.sim_time;
    observation.eta_single = query.eta_single;
    observation.eta_multi = query.eta_multi;
    observation.priority = query.priority;
    observation.arrival_time = query.arrival_time;
    observation.terminal = query.terminal();
    observation.finished = query.state == sched::QueryState::kFinished;
    observation.finish_time = query.finish_time;
    auto report = auditor_.Observe(observation);
    if (report.has_value()) RecordAccuracyMetrics(*report);
  }
}

void PiService::RecordAccuracyMetrics(const obs::QueryAccuracy& report) {
  if (tracer_->enabled()) {
    tracer_->Instant("audit", report.finished ? "query_scored" : "query_lost",
                     report.id, "mape_multi", report.multi.mape);
  }
  if (!report.finished) return;  // aborted: no ground truth to score
  const std::string priority(PriorityName(report.priority));
  const auto record = [&](const char* estimator,
                          const obs::EstimatorScore& score) {
    const Labels labels{{"estimator", estimator}, {"priority", priority}};
    if (score.samples > 0) {
      metrics_.histogram("pi.estimate_mape", labels, MapeBounds())
          ->Observe(score.mape);
      metrics_.histogram("pi.estimate_bias", labels, BiasBounds())
          ->Observe(score.bias);
    }
    metrics_.counter("pi.monotonicity_violations", {{"estimator", estimator}})
        ->Increment(
            static_cast<std::uint64_t>(score.monotonicity_violations));
  };
  record("single", report.single);
  record("multi", report.multi);
  metrics_.counter("pi.queries_scored")->Increment();
}

std::shared_ptr<ProgressSnapshot> PiService::BuildSnapshotLocked() const {
  MQPI_PROF_SITE(prof, "service.build_snapshot");
  auto snapshot = std::make_shared<ProgressSnapshot>();
  snapshot->sim_time = db_->now();
  snapshot->measured_rate = pis_->multi()->estimated_rate();

  std::unordered_map<QueryId, int> queue_position;
  {
    int position = 0;
    for (const auto& info : db_->QueuedQueries()) {
      queue_position.emplace(info.id, position++);
    }
  }

  // Running-query estimates come from ONE batch call when the PI's
  // incremental fast path is up: an O(n) flat-SoA sweep over all n
  // rows (batch_kernel.h) instead of n O(log n) treap probes. The
  // batch views are id-sorted, so the info loop below — also ascending
  // by id — consumes them as an O(n) merge-join with no hashing. When
  // the fast path is down the per-row calls fall back to the cached
  // analytic forecast, so a snapshot still costs at most one
  // simulation per epoch either way.
  pi::MultiQueryPi::BatchEstimates batch;
  {
    auto batched = pis_->multi()->EstimateAllRunning();
    if (batched.ok()) batch = *batched;
  }
  std::size_t batch_cursor = 0;
  snapshot->quiescent_eta =
      pis_->multi()->QuiescentEta().value_or(kUnknown);

  // Publication guardrail: an ETA reaches readers as a finite,
  // non-negative, within-horizon number or as one of the two honest
  // sentinels (kUnknown "no estimate", kInfiniteTime "blocked /
  // beyond horizon / invisible to this estimator") — never NaN, never
  // negative, never a finite absurdity past the forecast horizon (the
  // signature of a denormal-speed division). A non-credible value is
  // degraded to the query's last credible published ETA (kUnknown when
  // none exists yet), the row is flagged, and the event is counted.
  const SimTime horizon = options_.pi.multi.horizon;
  const auto guard = [&](QueryProgress* query, SimTime eta,
                         SimTime* last_good) {
    if (eta == kUnknown || eta == kInfiniteTime) return eta;  // sentinels
    if (std::isfinite(eta) && eta >= 0.0 && eta <= horizon) {
      *last_good = eta;
      return eta;
    }
    query->degraded = true;
    degraded_estimates_->Increment();
    return *last_good;
  };

  const auto infos = db_->AllQueries();  // sorted by id
  snapshot->queries.reserve(infos.size());
  for (const auto& info : infos) {
    QueryProgress query;
    query.id = info.id;
    auto owner = query_owner_.find(info.id);
    if (owner != query_owner_.end()) query.session_id = owner->second;
    query.label = info.label;
    query.state = info.state;
    query.priority = info.priority;
    query.weight = info.weight;
    query.completed_work = info.completed_work;
    query.remaining_cost = info.estimated_remaining_cost;
    query.arrival_time = info.arrival_time;
    query.start_time = info.start_time;
    query.finish_time = info.finish_time;
    const double total = info.completed_work + info.estimated_remaining_cost;
    query.fraction_done =
        total > 0.0 ? info.completed_work / total : 0.0;
    query.speed = pis_->SpeedOf(info.id);

    switch (info.state) {
      case sched::QueryState::kFinished:
        query.fraction_done = 1.0;
        query.remaining_cost = 0.0;
        [[fallthrough]];
      case sched::QueryState::kAborted:
        query.eta_single = 0.0;
        query.eta_multi = 0.0;
        break;
      case sched::QueryState::kBlocked:
        query.eta_single = kInfiniteTime;
        query.eta_multi = kInfiniteTime;
        break;
      case sched::QueryState::kQueued: {
        auto position = queue_position.find(info.id);
        if (position != queue_position.end()) {
          query.queue_position = position->second;
        }
        [[fallthrough]];
      }
      case sched::QueryState::kRunning: {
        LastGoodEta& good = last_good_eta_[info.id];
        query.eta_single =
            guard(&query, pis_->EstimateSingle(info.id).value_or(kUnknown),
                  &good.single);
        // Merge-join against the batch view: both this loop and
        // batch.ids ascend by id, and only running rows appear in the
        // batch, so queued rows simply never match the cursor.
        while (batch_cursor < batch.size && batch.ids[batch_cursor] < info.id) {
          ++batch_cursor;
        }
        SimTime multi_raw;
        if (batch_cursor < batch.size && batch.ids[batch_cursor] == info.id) {
          multi_raw = batch.etas[batch_cursor];
        } else {
          multi_raw =
              pis_->multi()->EstimateRemainingTime(info).value_or(kUnknown);
        }
        query.eta_multi = guard(&query, multi_raw, &good.multi);
        break;
      }
    }
    if (query.terminal()) last_good_eta_.erase(info.id);

    switch (info.state) {
      case sched::QueryState::kRunning:
        ++snapshot->num_running;
        break;
      case sched::QueryState::kQueued:
        ++snapshot->num_queued;
        break;
      case sched::QueryState::kBlocked:
        ++snapshot->num_blocked;
        break;
      default:
        break;
    }
    snapshot->queries.push_back(std::move(query));
  }
  return snapshot;
}

void PiService::Publish(std::shared_ptr<ProgressSnapshot> snapshot) {
  std::uint64_t sequence;
  SnapshotPtr published;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot->sequence = ++published_;
    sequence = snapshot->sequence;
    published = std::move(snapshot);
    snapshot_ = published;
  }
  publish_wall_ns_.store(WallClock::now().time_since_epoch().count(),
                         std::memory_order_release);
  snapshots_published_->Increment();
  if (tracer_->enabled()) {
    tracer_->Instant("service", "snapshot_published", kInvalidQueryId, "seq",
                     static_cast<double>(sequence));
  }
  // Fan the snapshot out to the network layer. Runs outside state_mu_
  // (every Publish call site already is) and outside snapshot_mu_, so
  // the hook may take its own locks; it must stay O(1)-cheap — the
  // ticker thread is the caller.
  PublishHook hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    hook = publish_hook_;
  }
  if (hook) {
    MQPI_PROF_SITE(prof, "service.publish_hook");
    hook(published);
  }
}

void PiService::SetPublishHook(PublishHook hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  publish_hook_ = std::move(hook);
}

Result<SimTime> PiService::EstimateWhatIf(
    const pi::MultiQueryPi::WhatIf& scenario, QueryId target) {
  std::lock_guard<std::mutex> lock(state_mu_);
  return pis_->multi()->EstimateWhatIf(scenario, target);
}

void PiService::RecordForecastCacheMetricsLocked() {
  const std::uint64_t hits = pis_->multi()->forecast_cache_hits();
  const std::uint64_t misses = pis_->multi()->forecast_cache_misses();
  if (!MQPI_DCHECK(hits >= seen_cache_hits_ &&
                   misses >= seen_cache_misses_)) {
    seen_cache_hits_ = hits;
    seen_cache_misses_ = misses;
    return;
  }
  forecast_cache_hit_->Increment(hits - seen_cache_hits_);
  forecast_cache_miss_->Increment(misses - seen_cache_misses_);
  seen_cache_hits_ = hits;
  seen_cache_misses_ = misses;

  const auto sync = [](Counter* counter, std::uint64_t total,
                       std::uint64_t* seen) {
    if (total > *seen) counter->Increment(total - *seen);
    *seen = total;
  };
  sync(incremental_fast_path_, pis_->multi()->incremental_fast_path(),
       &seen_incremental_fast_path_);
  sync(incremental_fallback_, pis_->multi()->incremental_fallback(),
       &seen_incremental_fallback_);
  sync(incremental_resyncs_, pis_->multi()->incremental_resyncs(),
       &seen_incremental_resyncs_);
  sync(batch_kernel_hits_, pis_->multi()->batch_kernel_hits(),
       &seen_batch_kernel_hits_);
  sync(batch_kernel_regens_, pis_->multi()->batch_kernel_regens(),
       &seen_batch_kernel_regens_);
}

void PiService::RecordDegradationMetricsLocked() {
  const pi::MultiQueryPi* multi = pis_->multi();
  const auto sync = [](Counter* counter, std::uint64_t total,
                       std::uint64_t* seen) {
    if (total > *seen) counter->Increment(total - *seen);
    *seen = total;
  };
  sync(rate_floor_hits_, multi->rate_floor_hits(), &seen_rate_floor_hits_);
  sync(corrupt_rate_samples_, multi->corrupt_rate_samples(),
       &seen_corrupt_rate_samples_);
  sync(degraded_estimates_, multi->degraded_estimates(),
       &seen_degraded_estimates_);
  if (fault_ == nullptr) return;
  // Per-point fire counts, labeled by fault-point name. The catalog
  // names are string literals with stable addresses, so the seen-map
  // can key on the pointer.
  for (const auto& stat : fault_->Stats()) {
    std::uint64_t* seen = &seen_fault_fires_[stat.point];
    if (stat.fires > *seen) {
      metrics_.counter("fault.injected", {{"point", stat.point}})
          ->Increment(stat.fires - *seen);
      if (flight_.enabled()) {
        flight_.Record(obs::FlightEventKind::kFault, "fault", stat.point,
                       static_cast<double>(stat.fires - *seen));
      }
      *seen = stat.fires;
    }
  }
}

void PiService::PublishNow() {
  std::shared_ptr<ProgressSnapshot> snapshot;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    {
      recover::Event event;
      event.kind = recover::EventKind::kPublish;
      AppendEventLocked(event);
    }
    snapshot = BuildSnapshotLocked();
    RecordForecastCacheMetricsLocked();
  }
  Publish(std::move(snapshot));
}

SnapshotPtr PiService::BuildUnpublishedSnapshot() {
  std::lock_guard<std::mutex> lock(state_mu_);
  {
    recover::Event event;
    event.kind = recover::EventKind::kProbe;
    AppendEventLocked(event);
  }
  return BuildSnapshotLocked();
}

// ---- graceful drain ---------------------------------------------------------

Status PiService::Drain(const DrainHooks& hooks) {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("drain already in progress");
  }
  // From here every Submit/SubmitAt fails kUnavailable; in-flight work
  // keeps its state and the final checkpoint captures it.
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    recover::Event event;
    event.kind = recover::EventKind::kDrain;
    AppendEventLocked(event);
  }
  drains_->Increment();
  if (tracer_->enabled()) {
    tracer_->Instant("service", "drain", kInvalidQueryId, "drains",
                     static_cast<double>(drains_->value()));
  }
  if (flight_.enabled()) {
    flight_.Record(obs::FlightEventKind::kNote, "service", "drain",
                   static_cast<double>(drains_->value()));
  }
  if (hooks.flush) hooks.flush();
  if (hooks.goodbye) hooks.goodbye();
  // The shutdown moment is exactly what an incident review wants on
  // disk: preserve the window leading up to it, then stop the clock.
  flight_.Trigger("drain");
  Stop();
  return Status::OK();
}

PiService::Liveness PiService::CheckLiveness() const {
  Liveness live;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    live.busy = !IdleLocked();
  }
  const auto published = publish_wall_ns_.load(std::memory_order_acquire);
  live.since_publish_s =
      std::chrono::duration<double>(
          WallClock::duration(
              WallClock::now().time_since_epoch().count() - published))
          .count();
  // A paced ticker legitimately publishes only once per tick period;
  // never call a gap shorter than a few periods a stall.
  live.stall_threshold_s = options_.watchdog.stall_threshold_s;
  const double period_s =
      options_.time_scale > 0.0
          ? options_.rdbms.quantum / options_.time_scale
          : options_.rdbms.quantum;
  if (options_.time_scale > 0.0) {
    live.stall_threshold_s = std::max(live.stall_threshold_s, 4.0 * period_s);
  }
  live.age_quanta = period_s > 0.0 ? live.since_publish_s / period_s : 0.0;
  live.uptime_quanta = quanta_stepped_->value();
  uptime_quanta_gauge_->Set(static_cast<double>(live.uptime_quanta));
  ticker_age_quanta_gauge_->Set(live.age_quanta);
  return live;
}

SnapshotPtr PiService::snapshot() const {
  SnapshotPtr snapshot;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot = snapshot_;
  }
  snapshot_reads_->Increment();
  const auto published =
      publish_wall_ns_.load(std::memory_order_acquire);
  const auto now = WallClock::now().time_since_epoch().count();
  if (published != 0 && now > published) {
    snapshot_age_ms_->Observe(
        std::chrono::duration<double, std::milli>(
            WallClock::duration(now - published))
            .count());
  }
  return snapshot;
}

// ---- ticker -----------------------------------------------------------------

bool PiService::ticking() const {
  std::lock_guard<std::mutex> lock(ticker_mu_);
  return ticker_.joinable() && !stop_requested();
}

void PiService::Start() {
  stop_.store(false, std::memory_order_release);
  StartTickerThread();
  if (options_.watchdog.enabled && !watchdog_.joinable()) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

void PiService::Stop() {
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  watchdog_cv_.notify_all();
  // Watchdog first: it may be mid-restart, manipulating the ticker
  // thread itself. Once it has exited, the ticker object is ours.
  if (watchdog_.joinable()) watchdog_.join();
  watchdog_ = std::thread();
  StopTickerThread();
}

void PiService::StartTickerThread() {
  std::lock_guard<std::mutex> lock(ticker_mu_);
  if (ticker_.joinable()) return;
  ticker_stop_.store(false, std::memory_order_release);
  ticker_ = std::thread([this] { TickerLoop(); });
  if (options_.pin_cpu >= 0) PinTicker(options_.pin_cpu);
}

void PiService::PinTicker(int cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  if (pthread_setaffinity_np(ticker_.native_handle(), sizeof(set), &set) !=
      0) {
    // A pin to an offline/nonexistent CPU must never kill the shard;
    // the ticker just runs unpinned and the miss is observable.
    pin_misses_->Increment();
  }
#else
  (void)cpu;
  pin_misses_->Increment();
#endif
}

void PiService::StopTickerThread() {
  std::thread victim;
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    ticker_stop_.store(true, std::memory_order_release);
    victim = std::move(ticker_);
    ticker_ = std::thread();
  }
  wake_cv_.notify_all();
  if (victim.joinable()) victim.join();
}

void PiService::NotifyWork() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    ++work_epoch_;
  }
  wake_cv_.notify_all();
}

void PiService::TickerLoop() {
  const SimTime quantum = options_.rdbms.quantum;
  auto next_tick = WallClock::now();
  while (!stop_requested() && !ticker_stop_requested()) {
    std::uint64_t seen_epoch;
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      seen_epoch = work_epoch_;
    }
    bool idle;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      idle = IdleLocked();
    }
    if (idle && options_.pause_when_idle) {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) ||
               ticker_stop_.load(std::memory_order_acquire) ||
               work_epoch_ != seen_epoch;
      });
      // Don't try to "catch up" wall time spent parked.
      next_tick = WallClock::now();
      continue;
    }

    if (fault_ != nullptr && fault_->enabled()) {
      const auto stall = fault_->Evaluate(fault::kServiceTickerStall);
      if (stall.fired) {
        // The failure mode the watchdog exists for: the ticker goes
        // deaf — no stepping, no publication, and (unlike the idle
        // park) no reaction to work notifications. Only stall expiry,
        // a watchdog kill, or service stop end it.
        const double stall_s = stall.value > 0.0 ? stall.value : 60.0;
        std::unique_lock<std::mutex> lock(wake_mu_);
        wake_cv_.wait_for(
            lock, std::chrono::duration<double>(stall_s), [&] {
              return stop_.load(std::memory_order_acquire) ||
                     ticker_stop_.load(std::memory_order_acquire);
            });
        next_tick = WallClock::now();
        continue;
      }
    }

    StepAndPublish(quantum);

    if (options_.time_scale > 0.0) {
      next_tick += std::chrono::duration_cast<WallClock::duration>(
          std::chrono::duration<double>(quantum / options_.time_scale));
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait_until(lock, next_tick, [&] {
        return stop_.load(std::memory_order_acquire) ||
               ticker_stop_.load(std::memory_order_acquire);
      });
    }
  }
}

void PiService::WatchdogLoop() {
  const WatchdogOptions& wd = options_.watchdog;
  double backoff_s = wd.backoff_initial_s;
  const auto interruptible_sleep = [&](double seconds) {
    std::unique_lock<std::mutex> lock(watchdog_mu_);
    watchdog_cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                          [&] { return stop_requested(); });
  };
  while (!stop_requested()) {
    interruptible_sleep(wd.poll_interval_s);
    if (stop_requested()) break;
    {
      std::lock_guard<std::mutex> lock(ticker_mu_);
      if (!ticker_.joinable()) continue;  // stopped deliberately
    }
    const Liveness live = CheckLiveness();
    if (!live.stalled()) {
      backoff_s = wd.backoff_initial_s;  // healthy: reset the backoff
      continue;
    }

    // Stalled: work is pending but nothing has been published for
    // over the threshold. Replace the ticker thread. All restart
    // observability lands between stop and start: the flight dump
    // must capture the ring leading up to the stall before the fresh
    // ticker appends to it, and the counter/trace/trigger must be
    // visible by the time the new ticker can make progress (anything
    // that observes the service healthy again sees the full record).
    StopTickerThread();
    if (stop_requested()) break;
    watchdog_restarts_->Increment();
    if (tracer_->enabled()) {
      tracer_->Instant("service", "watchdog_restart", kInvalidQueryId,
                       "stalled_s", live.since_publish_s);
    }
    if (flight_.enabled()) {
      flight_.Record(obs::FlightEventKind::kNote, "service",
                     "watchdog_restart", live.since_publish_s);
    }
    flight_.Trigger("watchdog_restart");
    StartTickerThread();
    interruptible_sleep(backoff_s);
    backoff_s = std::min(backoff_s * 2.0, wd.backoff_max_s);
  }
}

// ---- manual mode ------------------------------------------------------------

Status PiService::Advance(SimTime dt) {
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    if (ticker_.joinable()) {
      return Status::FailedPrecondition(
          "Advance() is for manual mode; a ticker thread is running");
    }
  }
  if (dt < 0.0) return Status::InvalidArgument("dt must be >= 0");
  const SimTime quantum = options_.rdbms.quantum;
  SimTime remaining = dt;
  while (remaining > kTimeEpsilon) {
    const SimTime step = std::min(remaining, quantum);
    StepAndPublish(step);
    remaining -= step;
  }
  return Status::OK();
}

Result<SimTime> PiService::AdvanceUntilIdle(SimTime deadline) {
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    if (ticker_.joinable()) {
      return Status::FailedPrecondition(
          "AdvanceUntilIdle() is for manual mode; a ticker thread is "
          "running");
    }
  }
  const SimTime quantum = options_.rdbms.quantum;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (IdleLocked()) break;
      if (db_->now() >= deadline - kTimeEpsilon) break;
    }
    StepAndPublish(quantum);
  }
  return now();
}

bool PiService::WaitUntilIdle(double timeout_seconds) {
  const auto deadline =
      WallClock::now() + std::chrono::duration_cast<WallClock::duration>(
                             std::chrono::duration<double>(timeout_seconds));
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (IdleLocked()) return true;
    }
    // A stopped ticker can never drain the system — but a missing
    // ticker with a live watchdog is just a restart in flight.
    if (stop_requested() || (!ticking() && !watchdog_.joinable())) {
      std::lock_guard<std::mutex> lock(state_mu_);
      return IdleLocked();
    }
    if (WallClock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

// ---- point-in-time reads ----------------------------------------------------

SimTime PiService::now() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return db_->now();
}

bool PiService::Idle() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return IdleLocked();
}

Result<std::string> PiService::Explain(const engine::QuerySpec& spec) {
  std::lock_guard<std::mutex> lock(state_mu_);
  return db_->planner()->Explain(spec);
}

void PiService::SetAdmissionOpen(bool open) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    recover::Event event;
    event.kind = recover::EventKind::kAdmission;
    event.flag = open;
    AppendEventLocked(event);
    db_->SetAdmissionOpen(open);
  }
  if (open) NotifyWork();
}

}  // namespace mqpi::service
