#include "service/session.h"

#include <utility>

#include "service/pi_service.h"

namespace mqpi::service {

Session::Session(PiService* service, std::uint64_t id, std::string name)
    : service_(service), id_(id), name_(std::move(name)) {}

Session::~Session() { Close(); }

Result<QueryId> Session::Submit(const engine::QuerySpec& spec,
                                Priority priority) {
  if (closed()) return Status::FailedPrecondition("session closed");
  return service_->SessionSubmit(id_, spec, priority);
}

Status Session::SubmitAt(SimTime time, engine::QuerySpec spec,
                         Priority priority) {
  if (closed()) return Status::FailedPrecondition("session closed");
  return service_->SessionSubmitAt(id_, time, std::move(spec), priority);
}

std::uint64_t Session::LiveQueries() const {
  if (closed()) return 0;
  return service_->SessionLiveCount(id_).value_or(0);
}

Result<QueryProgress> Session::Progress(QueryId id) const {
  const SnapshotPtr snapshot = service_->snapshot();
  const QueryProgress* query = snapshot->Find(id);
  if (query == nullptr) {
    return Status::NotFound("query " + std::to_string(id) +
                            " not in snapshot " +
                            std::to_string(snapshot->sequence));
  }
  return *query;
}

std::vector<QueryProgress> Session::ListQueries() const {
  std::vector<QueryProgress> out;
  const SnapshotPtr snapshot = service_->snapshot();
  for (const auto& query : snapshot->queries) {
    if (query.session_id == id_) out.push_back(query);
  }
  return out;
}

SnapshotPtr Session::snapshot() const { return service_->snapshot(); }

Status Session::Block(QueryId id) {
  if (closed()) return Status::FailedPrecondition("session closed");
  return service_->SessionControl(id_, id, sched::QueryEventKind::kBlocked,
                                  Priority::kNormal);
}

Status Session::Resume(QueryId id) {
  if (closed()) return Status::FailedPrecondition("session closed");
  return service_->SessionControl(id_, id, sched::QueryEventKind::kResumed,
                                  Priority::kNormal);
}

Status Session::Abort(QueryId id) {
  if (closed()) return Status::FailedPrecondition("session closed");
  return service_->SessionControl(id_, id, sched::QueryEventKind::kAborted,
                                  Priority::kNormal);
}

Status Session::SetPriority(QueryId id, Priority priority) {
  if (closed()) return Status::FailedPrecondition("session closed");
  return service_->SessionControl(
      id_, id, sched::QueryEventKind::kPriorityChanged, priority);
}

Status Session::Close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) {
    return Status::OK();
  }
  return service_->CloseSession(id_);
}

}  // namespace mqpi::service
