// Traffic: bridges the workload layer's pre-generated arrival schedules
// (Poisson arrivals over a Zipf query mix, §5.2.3) onto a live service
// session — the same traces the simulation runner replays offline
// become concurrent service traffic.
#pragma once

#include "common/priority.h"
#include "common/status.h"
#include "workload/arrival_schedule.h"
#include "workload/zipf_workload.h"

namespace mqpi::service {

class Session;

/// Schedules every arrival in `schedule` onto `session` (the ticker
/// submits each one when its simulated time comes due; the queries then
/// belong to the session). Returns the first scheduling error; entries
/// already scheduled stay scheduled.
Status ReplaySchedule(Session* session,
                      const workload::ZipfWorkload& workload,
                      const std::vector<workload::ScheduledArrival>& schedule,
                      Priority priority = Priority::kNormal);

}  // namespace mqpi::service
