// Metrics: a small thread-safe registry of counters, gauges, and
// latency histograms for the PI service layer.
//
// Instruments are created on first use (`registry.counter("name")`) and
// live as long as the registry; the returned pointers are stable, so hot
// paths cache them and update lock-free (counters and gauges are single
// atomics; histograms take a short per-instrument mutex). Every lookup
// may also carry labels — `histogram("pi.estimate_error",
// {{"priority", "high"}})` — which key a distinct series within the
// same named family, mirroring the Prometheus data model.
//
// Two renderings:
//   - `TextDump()` — flat, grep-friendly lines for the dashboard
//     example and tests. Unlabeled series render exactly as they always
//     have; labeled series append `{k=v,...}` to the name:
//
//       counter   service.quanta_stepped 1042
//       counter   wlm.blocks{priority=high} 3
//       gauge     queries.running 3
//       histogram step.wall_ms count=1042 sum=96.1 mean=0.092
//                 min=0.01 max=1.8 le_0.25=820 ... inf=1042
//
//   - `PrometheusDump()` — the Prometheus text exposition format
//     (`# TYPE` headers, `name{label="v"} value` samples, histogram
//     `_bucket{le="..."}` cumulative series). Dots in names become
//     underscores, the one transform needed for a legal metric name.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mqpi::service {

/// Key/value pairs distinguishing series within a metric family.
/// Order-insensitive: the registry canonicalises by sorting on key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram (cumulative buckets, Prometheus-style) with
/// count/sum/min/max. Default boundaries suit millisecond latencies.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds = DefaultBounds());

  void Observe(double v);

  std::uint64_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  /// Value below which `quantile` (in [0,1]) of observations fall,
  /// linearly interpolated within its bucket and clamped to the
  /// observed [min, max] (the overflow bucket has no upper bound, so
  /// interpolation there runs to the observed max); 0 when empty.
  double Quantile(double quantile) const;

  static std::vector<double> DefaultBounds();

  /// Consistent point-in-time copy of the full state, for renderers
  /// that need buckets and summary stats together.
  struct Snapshot {
    std::vector<double> bounds;
    /// Cumulative counts per bound, plus the +Inf total at the end
    /// (size = bounds.size() + 1).
    std::vector<std::uint64_t> cumulative;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  Snapshot snapshot() const;

  /// "count=N sum=S mean=M min=L max=X le_<b>=c ... inf=N".
  std::string Render() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> bounds_;          // ascending upper bounds
  std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named instruments, created on demand. Thread-safe; instrument
/// pointers remain valid for the registry's lifetime. A (name, labels)
/// pair identifies one series; the same name with different labels is
/// the same family rendered as separate samples.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name, const Labels& labels = {});
  Gauge* gauge(const std::string& name, const Labels& labels = {});
  /// `bounds` applies only when this call creates the series; later
  /// lookups return the existing instrument regardless.
  Histogram* histogram(const std::string& name, const Labels& labels = {},
                       std::vector<double> bounds = {});

  /// Every series, one per line, sorted by name (then label set)
  /// within each kind.
  std::string TextDump() const;

  /// The Prometheus text exposition format: one `# TYPE` header per
  /// family, then its samples. Histograms expand to `_bucket` series
  /// (cumulative, with the `le` label and a `+Inf` terminator) plus
  /// `_sum` and `_count`.
  std::string PrometheusDump() const;
  /// Same exposition with `extra` merged into every series' label set
  /// (the HTTP exporter injects `shard="i"` per shard registry).
  std::string PrometheusDump(const Labels& extra) const;

 private:
  template <typename T>
  struct Series {
    Labels labels;  // canonical (sorted by key)
    std::unique_ptr<T> instrument;
  };
  /// family name -> canonical label string -> series.
  template <typename T>
  using FamilyMap = std::map<std::string, std::map<std::string, Series<T>>>;

  mutable std::mutex mu_;
  FamilyMap<Counter> counters_;
  FamilyMap<Gauge> gauges_;
  FamilyMap<Histogram> histograms_;
};

}  // namespace mqpi::service
