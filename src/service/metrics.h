// Metrics: a small thread-safe registry of counters, gauges, and
// latency histograms for the PI service layer.
//
// Instruments are created on first use (`registry.counter("name")`) and
// live as long as the registry; the returned pointers are stable, so hot
// paths cache them and update lock-free (counters and gauges are single
// atomics; histograms take a short per-instrument mutex). `TextDump()`
// renders every instrument in a flat, grep-friendly text format for the
// dashboard example and for tests:
//
//   counter   service.quanta_stepped 1042
//   gauge     queries.running 3
//   histogram step.wall_ms count=1042 sum=96.1 mean=0.092 max=1.8
//             le_0.25=820 le_1=1033 le_4=1042 ... inf=1042
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mqpi::service {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram (cumulative buckets, Prometheus-style) with
/// count/sum/min/max. Default boundaries suit millisecond latencies.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds = DefaultBounds());

  void Observe(double v);

  std::uint64_t count() const;
  double sum() const;
  double max() const;
  /// Value below which `quantile` (in [0,1]) of observations fall,
  /// linearly interpolated within its bucket; 0 when empty.
  double Quantile(double quantile) const;

  static std::vector<double> DefaultBounds();

  /// "count=N sum=S mean=M max=X le_<b>=c ... inf=N".
  std::string Render() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> bounds_;          // ascending upper bounds
  std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named instruments, created on demand. Thread-safe; instrument
/// pointers remain valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Every instrument, one per line, sorted by name within each kind.
  std::string TextDump() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mqpi::service
