// ShardedPiService: N independent PiShards behind one coordinator.
//
// The scaling problem: one PiService is one ticker thread stepping one
// Rdbms, and the per-quantum cost is linear in the number of live
// queries. Past a few thousand concurrent queries the single scheduler
// is the bottleneck no matter how fast each estimate is. The fix is
// the classic one — partition tenants across N shards, each a full
// Rdbms + MultiQueryPi + ticker of its own, and aggregate.
//
// Coordinator contract (the part that must not serialize the hot
// path):
//   - Shards publish independently. There is no coordinator lock on
//     any tick path; each shard's publish is the same pointer-swap +
//     O(1) hook it always was.
//   - The coordinator assembles the global view ON DEMAND from the
//     shards' immutable latest-snapshot pointers. The merge is cached
//     keyed on the exact pointer tuple it was built from: while no
//     shard publishes, GlobalSnapshot() returns the identical
//     shared_ptr (byte-stable by construction — the acceptance test
//     re-merges and compares wire encodings).
//   - Merged sequence = sum of shard sequences (monotone: every shard
//     publish bumps exactly one addend by one). Merged sim_time = max;
//     run/queue counts and measured rate are sums; quiescent ETA is
//     the max over busy shards of their *absolute* quiesce times,
//     re-expressed relative to the merged sim_time (kUnknown from any
//     busy shard poisons the merge to kUnknown; else any infinite
//     forecast makes it kInfiniteTime).
//
// Identity: global query id = (shard << 48) | shard-local id, and the
// same encoding for session ids inside merged snapshots. Shard 0's ids
// are unchanged, so a single-shard deployment is bit-for-bit the
// unsharded service. Because each shard's rows are sorted by local id,
// concatenating shards in order yields a globally sorted row vector —
// the merge is one O(total rows) pass, never a sort.
//
// Routing: FNV-1a over the session/tenant name, mod N. Deterministic
// and stateless — a reconnecting tenant lands on the same shard, and
// recovery can re-route the journaled session names identically.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "pi/multi_query_pi.h"
#include "service/metrics.h"
#include "service/pi_shard.h"
#include "service/pi_service.h"
#include "service/snapshot.h"

namespace mqpi::service {

// ---- global id space --------------------------------------------------------

/// Shard index lives in the top 16 bits; 48 bits of local id is ~10^14
/// queries per shard before wrap, far past any journal's horizon.
inline constexpr int kShardIdShift = 48;
inline constexpr std::uint64_t kShardLocalMask =
    (std::uint64_t{1} << kShardIdShift) - 1;

constexpr std::uint64_t GlobalId(int shard, std::uint64_t local) {
  return (static_cast<std::uint64_t>(shard) << kShardIdShift) |
         (local & kShardLocalMask);
}
constexpr int ShardOfGlobalId(std::uint64_t global) {
  return static_cast<int>(global >> kShardIdShift);
}
constexpr std::uint64_t LocalIdOf(std::uint64_t global) {
  return global & kShardLocalMask;
}

/// FNV-1a, the routing hash. Exposed so tests and the wire edge can
/// predict placements.
constexpr std::uint64_t RouteHash(std::string_view name) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

struct ShardedPiServiceOptions {
  int num_shards = 1;
  /// Template for every shard's PiService. Copied per shard; the
  /// per-shard hook below then customizes the copy (fault injector,
  /// event sink, pin CPU).
  PiServiceOptions shard;
  /// Pin shard i's ticker to CPU (i % hardware_concurrency). Overrides
  /// `shard.pin_cpu`. Best-effort — a failed pin is a metric bump.
  bool pin_cpus = false;
  /// Called with each shard's options copy before construction, so the
  /// owner can scope fault injectors / journals per shard.
  std::function<void(int shard, PiServiceOptions*)> per_shard;
};

class ShardedPiService {
 public:
  /// Owning construction: builds `num_shards` fresh shards.
  ShardedPiService(const storage::Catalog* catalog,
                   ShardedPiServiceOptions options);
  /// Adopting construction (recovery): borrows already-recovered
  /// services, one per shard (at least one), which must outlive the
  /// coordinator.
  explicit ShardedPiService(std::vector<PiService*> recovered);
  ~ShardedPiService();

  ShardedPiService(const ShardedPiService&) = delete;
  ShardedPiService& operator=(const ShardedPiService&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  PiShard* shard(int i) { return shards_[static_cast<std::size_t>(i)].get(); }
  PiService* shard_service(int i) {
    return shards_[static_cast<std::size_t>(i)]->service();
  }
  const PiService* shard_service(int i) const {
    return shards_[static_cast<std::size_t>(i)]->service();
  }

  // ---- routing --------------------------------------------------------------

  /// Deterministic tenant → shard placement.
  int Route(std::string_view tenant) const {
    return static_cast<int>(RouteHash(tenant) %
                            static_cast<std::uint64_t>(shards_.size()));
  }

  /// Opens a session on the routed shard; `*shard_out` (optional)
  /// receives the shard index the name hashed to.
  std::unique_ptr<Session> OpenSession(std::string name,
                                       int* shard_out = nullptr);

  // ---- global view ----------------------------------------------------------

  /// The merged global snapshot, assembled from the shards' latest
  /// pointers. Cached: identical shard latests return the identical
  /// merged pointer; any shard publish invalidates. Never null.
  SnapshotPtr GlobalSnapshot();

  /// Unconditionally rebuilds the merge from the current latests,
  /// bypassing the cache — the byte-stability differential probe.
  /// (Same latests must wire-encode identically to GlobalSnapshot().)
  SnapshotPtr MergeNow();

  /// §3 what-if routed by global id: every id in `scenario` and
  /// `target` must decode to the same shard (the engines are
  /// independent — a cross-shard scenario has no single forecast to
  /// evaluate, and is rejected with InvalidArgument).
  Result<SimTime> EstimateWhatIf(const pi::MultiQueryPi::WhatIf& scenario,
                                 std::uint64_t global_target);

  // ---- lifecycle ------------------------------------------------------------

  void Start();
  void Stop();
  /// True when every shard reached idle within the wall budget.
  bool WaitUntilIdle(double timeout_seconds);

  /// Coordinated graceful drain. All shards drain CONCURRENTLY — wall
  /// time is the max of the per-shard drains, not the sum (the
  /// regression test pins this) — then `goodbye` runs exactly once.
  struct DrainHooks {
    /// Per-shard flush (journal + final checkpoint); runs on the
    /// shard's drain thread.
    std::function<void(int shard)> flush;
    /// Runs once after every shard has drained.
    std::function<void()> goodbye;
  };
  Status Drain(const DrainHooks& hooks = {});
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Fleet liveness: per-shard verdicts plus the aggregate the
  /// /healthz endpoint keys on (healthy = no shard stalled).
  struct GlobalLiveness {
    bool any_stalled = false;
    int busy_shards = 0;
    std::vector<PiService::Liveness> shards;
  };
  GlobalLiveness CheckLiveness() const;

  /// Coordinator-scope instruments: coord.shards, coord.merge_ns,
  /// coord.merges, coord.rebalance_hints. Shard-scope metrics stay in
  /// each shard's own registry (shard_service(i)->metrics()).
  MetricsRegistry* metrics() { return &metrics_; }

 private:
  // Builds the merged snapshot from `latests` (one per shard, in
  // shard order). Pure function of its inputs — determinism is what
  // the byte-stability test leans on.
  std::shared_ptr<ProgressSnapshot> Merge(
      const std::vector<SnapshotPtr>& latests) const;

  std::vector<std::unique_ptr<PiShard>> shards_;
  std::atomic<bool> draining_{false};

  // Merge cache: the latests tuple the cached merge was built from.
  // merge_mu_ is only ever held for pointer compares and the (rare)
  // rebuild — never on any shard's tick path.
  mutable std::mutex merge_mu_;
  std::vector<SnapshotPtr> merge_key_;
  SnapshotPtr merged_;

  MetricsRegistry metrics_;
  Gauge* shards_gauge_;
  Counter* merges_;
  Counter* rebalance_hints_;
  Histogram* merge_ns_;
};

}  // namespace mqpi::service
