#include "service/metrics.h"

#include <algorithm>
#include <cstdio>

namespace mqpi::service {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  // %g keeps counters integral-looking and latencies compact.
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

Labels Canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// "k=v,k2=v2" — the within-family map key and the TextDump suffix.
std::string LabelKey(const Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ",";
    out += k + "=" + v;
  }
  return out;
}

/// Dots are the only character our dotted.lowercase convention uses
/// that Prometheus metric names disallow.
std::string PromName(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '.', '_');
  return out;
}

std::string PromEscape(const std::string& v) {
  std::string out;
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// `k="v",k2="v2"` — no surrounding braces so callers can append `le`.
std::string PromLabelBody(const Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ",";
    out += k + "=\"" + PromEscape(v) + "\"";
  }
  return out;
}

std::string PromSeries(const std::string& name, const std::string& body) {
  return body.empty() ? name : name + "{" + body + "}";
}

}  // namespace

std::vector<double> Histogram::DefaultBounds() {
  return {0.0625, 0.25, 1.0, 4.0, 16.0, 64.0, 256.0, 1024.0};
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {}

void Histogram::Observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++buckets_[i];
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::Quantile(double quantile) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  quantile = std::clamp(quantile, 0.0, 1.0);
  const double target = quantile * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (seen + buckets_[i] < target) {
      seen += buckets_[i];
      continue;
    }
    // Interpolation endpoints clamped to the observed range: bucket
    // bounds say nothing about where observations sit inside them, and
    // the overflow bucket has no upper bound at all — its ceiling is
    // the observed max.
    double lo = i == 0 ? min_ : std::max(bounds_[i - 1], min_);
    double hi = i < bounds_.size() ? std::min(bounds_[i], max_) : max_;
    if (hi < lo) hi = lo;
    if (buckets_[i] == 0) return lo;
    const double within =
        (target - static_cast<double>(seen)) /
        static_cast<double>(buckets_[i]);
    return std::clamp(lo + within * (hi - lo), min_, max_);
  }
  return max_;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.bounds = bounds_;
  s.cumulative.reserve(buckets_.size());
  std::uint64_t cumulative = 0;
  for (std::uint64_t bucket : buckets_) {
    cumulative += bucket;
    s.cumulative.push_back(cumulative);
  }
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  return s;
}

std::string Histogram::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "count=" + FormatDouble(static_cast<double>(count_)) +
                    " sum=" + FormatDouble(sum_) + " mean=" +
                    FormatDouble(count_ > 0
                                     ? sum_ / static_cast<double>(count_)
                                     : 0.0) +
                    " min=" + FormatDouble(min_) +
                    " max=" + FormatDouble(max_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    cumulative += buckets_[i];
    out += " le_" + FormatDouble(bounds_[i]) + "=" +
           FormatDouble(static_cast<double>(cumulative));
  }
  cumulative += buckets_.back();
  out += " inf=" + FormatDouble(static_cast<double>(cumulative));
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Labels canon = Canonical(labels);
  auto& series = counters_[name][LabelKey(canon)];
  if (!series.instrument) {
    series.labels = std::move(canon);
    series.instrument = std::make_unique<Counter>();
  }
  return series.instrument.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Labels canon = Canonical(labels);
  auto& series = gauges_[name][LabelKey(canon)];
  if (!series.instrument) {
    series.labels = std::move(canon);
    series.instrument = std::make_unique<Gauge>();
  }
  return series.instrument.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Labels canon = Canonical(labels);
  auto& series = histograms_[name][LabelKey(canon)];
  if (!series.instrument) {
    series.labels = std::move(canon);
    series.instrument = std::make_unique<Histogram>(
        bounds.empty() ? Histogram::DefaultBounds() : std::move(bounds));
  }
  return series.instrument.get();
}

std::string MetricsRegistry::TextDump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  const auto series_name = [](const std::string& name,
                              const std::string& key) {
    return key.empty() ? name : name + "{" + key + "}";
  };
  for (const auto& [name, family] : counters_) {
    for (const auto& [key, series] : family) {
      out += "counter   " + series_name(name, key) + " " +
             FormatDouble(static_cast<double>(series.instrument->value())) +
             "\n";
    }
  }
  for (const auto& [name, family] : gauges_) {
    for (const auto& [key, series] : family) {
      out += "gauge     " + series_name(name, key) + " " +
             FormatDouble(series.instrument->value()) + "\n";
    }
  }
  for (const auto& [name, family] : histograms_) {
    for (const auto& [key, series] : family) {
      out += "histogram " + series_name(name, key) + " " +
             series.instrument->Render() + "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::PrometheusDump() const {
  return PrometheusDump(Labels{});
}

std::string MetricsRegistry::PrometheusDump(const Labels& extra) const {
  // Per-shard registries are identical by construction; the exporter
  // injects {shard="i"} here so one scrape can tell them apart.
  const auto with_extra = [&extra](const Labels& labels) {
    if (extra.empty()) return labels;
    Labels merged = labels;
    merged.insert(merged.end(), extra.begin(), extra.end());
    return Canonical(merged);
  };
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : counters_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " counter\n";
    for (const auto& [key, series] : family) {
      out += PromSeries(prom, PromLabelBody(with_extra(series.labels))) +
             " " +
             FormatDouble(static_cast<double>(series.instrument->value())) +
             "\n";
    }
  }
  for (const auto& [name, family] : gauges_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    for (const auto& [key, series] : family) {
      out += PromSeries(prom, PromLabelBody(with_extra(series.labels))) +
             " " + FormatDouble(series.instrument->value()) + "\n";
    }
  }
  for (const auto& [name, family] : histograms_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " histogram\n";
    for (const auto& [key, series] : family) {
      const Histogram::Snapshot snap = series.instrument->snapshot();
      const std::string base = PromLabelBody(with_extra(series.labels));
      const std::string sep = base.empty() ? "" : ",";
      for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
        out += prom + "_bucket{" + base + sep + "le=\"" +
               FormatDouble(snap.bounds[i]) + "\"} " +
               FormatDouble(static_cast<double>(snap.cumulative[i])) + "\n";
      }
      out += prom + "_bucket{" + base + sep + "le=\"+Inf\"} " +
             FormatDouble(static_cast<double>(snap.count)) + "\n";
      out += PromSeries(prom + "_sum", base) + " " + FormatDouble(snap.sum) +
             "\n";
      out += PromSeries(prom + "_count", base) + " " +
             FormatDouble(static_cast<double>(snap.count)) + "\n";
    }
  }
  return out;
}

}  // namespace mqpi::service
