#include "service/metrics.h"

#include <algorithm>
#include <cstdio>

namespace mqpi::service {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  // %g keeps counters integral-looking and latencies compact.
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::vector<double> Histogram::DefaultBounds() {
  return {0.0625, 0.25, 1.0, 4.0, 16.0, 64.0, 256.0, 1024.0};
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {}

void Histogram::Observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++buckets_[i];
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::Quantile(double quantile) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  quantile = std::clamp(quantile, 0.0, 1.0);
  const double target = quantile * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (seen + buckets_[i] < target) {
      seen += buckets_[i];
      continue;
    }
    const double lo = i == 0 ? min_ : bounds_[i - 1];
    const double hi = i < bounds_.size() ? bounds_[i] : max_;
    if (buckets_[i] == 0) return lo;
    const double within =
        (target - static_cast<double>(seen)) /
        static_cast<double>(buckets_[i]);
    return lo + within * (hi - lo);
  }
  return max_;
}

std::string Histogram::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "count=" + FormatDouble(static_cast<double>(count_)) +
                    " sum=" + FormatDouble(sum_) + " mean=" +
                    FormatDouble(count_ > 0
                                     ? sum_ / static_cast<double>(count_)
                                     : 0.0) +
                    " max=" + FormatDouble(max_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    cumulative += buckets_[i];
    out += " le_" + FormatDouble(bounds_[i]) + "=" +
           FormatDouble(static_cast<double>(cumulative));
  }
  cumulative += buckets_.back();
  out += " inf=" + FormatDouble(static_cast<double>(cumulative));
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::TextDump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += "counter   " + name + " " +
           FormatDouble(static_cast<double>(counter->value())) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "gauge     " + name + " " + FormatDouble(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out += "histogram " + name + " " + histogram->Render() + "\n";
  }
  return out;
}

}  // namespace mqpi::service
