#include "obs/tracer.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <functional>
#include <ostream>

namespace mqpi::obs {

namespace {

std::uint32_t ThisThreadId() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1);
  return id;
}

void AppendNumber(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  out->append(buf);
}

/// Appends `s` JSON-escaped (no surrounding quotes). Categories and
/// names are *supposed* to be JSON-safe literals, but a stray quote,
/// backslash, or control character must not corrupt the whole export.
void AppendJsonEscaped(std::string* out, const char* s) {
  if (s == nullptr) return;
  for (const char* p = s; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
        break;
    }
  }
}

}  // namespace

std::string RenderTraceEventJson(const TraceEvent& event) {
  std::string out = "{\"ts\":";
  // Chrome expects microseconds.
  AppendNumber(&out, static_cast<double>(event.ts_ns) / 1000.0);
  if (event.phase == TracePhase::kComplete) {
    out += ",\"dur\":";
    AppendNumber(&out, static_cast<double>(event.dur_ns) / 1000.0);
  }
  out += ",\"ph\":\"";
  out += static_cast<char>(event.phase);
  out += "\",\"cat\":\"";
  AppendJsonEscaped(&out, event.category);
  out += "\",\"name\":\"";
  AppendJsonEscaped(&out, event.name);
  out += "\",\"pid\":1,\"tid\":";
  AppendNumber(&out, event.tid);
  bool has_args = event.query != kInvalidQueryId ||
                  event.arg1_key != nullptr || event.arg2_key != nullptr;
  if (has_args) {
    out += ",\"args\":{";
    bool first = true;
    auto field = [&](const char* key, double value) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      AppendJsonEscaped(&out, key);
      out += "\":";
      AppendNumber(&out, value);
    };
    if (event.query != kInvalidQueryId) {
      field("query", static_cast<double>(event.query));
    }
    if (event.arg1_key != nullptr) field(event.arg1_key, event.arg1);
    if (event.arg2_key != nullptr) field(event.arg2_key, event.arg2);
    out += "}";
  }
  out += "}";
  return out;
}

Tracer::Tracer(TracerOptions options)
    : options_(options),
      enabled_(options.enabled),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.stripes == 0) options_.stripes = 1;
  if (options_.capacity < options_.stripes) {
    options_.capacity = options_.stripes;
  }
  stripe_capacity_ =
      (options_.capacity + options_.stripes - 1) / options_.stripes;
  stripes_.reserve(options_.stripes);
  for (std::size_t i = 0; i < options_.stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

Tracer::Stripe& Tracer::StripeForThisThread() {
  return *stripes_[ThisThreadId() % stripes_.size()];
}

void Tracer::Record(TraceEvent event) {
  if (!enabled()) return;
  const auto now_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  if (event.ts_ns == 0) {
    // Complete events are recorded at span *end*; back-date to start.
    event.ts_ns = event.phase == TracePhase::kComplete &&
                          event.dur_ns < now_ns
                      ? now_ns - event.dur_ns
                      : now_ns;
  }
  event.tid = ThisThreadId();
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed);

  Stripe& stripe = StripeForThisThread();
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (stripe.ring.empty()) stripe.ring.resize(stripe_capacity_);
  stripe.ring[stripe.next] = event;
  stripe.next = (stripe.next + 1) % stripe.ring.size();
  ++stripe.count;
}

void Tracer::Instant(const char* category, const char* name, QueryId query,
                     const char* arg_key, double arg) {
  if (!enabled()) return;
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = TracePhase::kInstant;
  event.query = query;
  event.arg1_key = arg_key;
  event.arg1 = arg;
  Record(event);
}

void Tracer::CounterValue(const char* category, const char* name,
                          double value) {
  if (!enabled()) return;
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = TracePhase::kCounter;
  event.arg1_key = "value";
  event.arg1 = value;
  Record(event);
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    const std::uint64_t retained =
        std::min<std::uint64_t>(stripe->count, stripe->ring.size());
    // Oldest retained event sits at `next` once the ring has wrapped.
    std::size_t at = stripe->count > stripe->ring.size() ? stripe->next : 0;
    for (std::uint64_t i = 0; i < retained; ++i) {
      out.push_back(stripe->ring[at]);
      at = (at + 1) % stripe->ring.size();
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::uint64_t Tracer::recorded() const {
  std::uint64_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total += stripe->count;
  }
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    if (stripe->count > stripe->ring.size()) {
      total += stripe->count - stripe->ring.size();
    }
  }
  return total;
}

void Tracer::Clear() {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->ring.clear();
    stripe->next = 0;
    stripe->count = 0;
  }
}

void Tracer::ExportJsonl(std::ostream& os) const {
  for (const auto& event : Events()) os << RenderTraceEventJson(event) << "\n";
}

void Tracer::ExportChromeTrace(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& event : Events()) {
    os << (first ? "\n" : ",\n") << RenderTraceEventJson(event);
    first = false;
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

namespace {
Status WriteWith(const std::string& path,
                 const std::function<void(std::ostream&)>& emit) {
  std::ofstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open '" + path + "' for write");
  }
  emit(file);
  file.flush();
  if (!file) return Status::InvalidArgument("write to '" + path + "' failed");
  return Status::OK();
}
}  // namespace

Status Tracer::WriteJsonl(const std::string& path) const {
  return WriteWith(path, [this](std::ostream& os) { ExportJsonl(os); });
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  return WriteWith(path,
                   [this](std::ostream& os) { ExportChromeTrace(os); });
}

Tracer* GlobalTracer() {
  static Tracer tracer;
  return &tracer;
}

}  // namespace mqpi::obs
