// EstimateAuditor: live estimate-vs-actual accuracy scoring.
//
// The paper's whole evaluation (§4, Figures 1-11) is about how fast the
// remaining-time estimates r_i converge to the truth as queries run.
// The auditor computes those quality metrics *in production*: it is fed
// one observation per query per published quantum (the service does
// this from its snapshot loop), retains each query's estimate
// trajectory, and when the query completes scores the trajectory
// against ground truth — the query's actual remaining time at each
// sample, known exactly once the finish time is.
//
// Per query and per estimator (single-query PI vs multi-query PI) it
// reports:
//   - MAPE: mean |estimate - actual| / actual over scored samples,
//   - signed bias: mean (estimate - actual) / actual (>0 = pessimistic
//     overestimates, <0 = optimistic underestimates),
//   - monotonicity violations: samples where the remaining-time
//     estimate *rose* since the previous sample (a perfect estimator
//     under stationary load only ever counts down; rises mark load
//     changes the estimator did not anticipate — Figures 6-7),
//   - convergence: the earliest time from which every later estimate
//     stays within 10% of the truth (Figure 1/10's "how soon can you
//     trust it" question), also expressed as a fraction of the query's
//     lifetime (0 = trustworthy immediately, unknown = never settled).
//
// Rolling aggregates over every scored query are maintained as running
// sums, so Aggregate() reflects the full history even though only the
// most recent `retain_completed` per-query reports are kept.
//
// Thread-safety: fully internally locked. One writer (the service's
// stepping thread) calls Observe(); any number of reader threads may
// call Completed()/ReportFor()/Aggregate()/RenderText() concurrently —
// the TSan stress test drives exactly that pattern.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/priority.h"
#include "common/status.h"
#include "common/units.h"

namespace mqpi::obs {

/// One per-quantum estimate reading for one query, as published in a
/// ProgressSnapshot. Estimates are *remaining seconds* from `time`;
/// kUnknown / kInfiniteTime readings are carried through and skipped
/// where truth comparison is impossible.
struct EstimateObservation {
  QueryId id = kInvalidQueryId;
  SimTime time = 0.0;
  SimTime eta_single = kUnknown;
  SimTime eta_multi = kUnknown;
  Priority priority = Priority::kNormal;
  SimTime arrival_time = 0.0;
  /// Terminal transition: set on the first observation in which the
  /// query is finished or aborted; triggers scoring.
  bool terminal = false;
  bool finished = false;           // vs aborted; valid when terminal
  SimTime finish_time = kUnknown;  // valid when terminal
};

/// Accuracy of one estimator over one completed query.
struct EstimatorScore {
  /// Samples with a usable estimate and a usable truth.
  int samples = 0;
  double mape = kUnknown;
  double bias = kUnknown;
  int monotonicity_violations = 0;
  /// Earliest sim time from which every later estimate stayed within
  /// the convergence band of the truth; kUnknown if it never settled.
  SimTime converged_at = kUnknown;
  /// (converged_at - arrival) / lifetime, in [0, 1]; kUnknown if never.
  double converged_fraction = kUnknown;
};

struct QueryAccuracy {
  QueryId id = kInvalidQueryId;
  Priority priority = Priority::kNormal;
  bool finished = false;  // aborted queries carry no scores (no truth)
  SimTime arrival_time = 0.0;
  SimTime finish_time = kUnknown;
  SimTime lifetime = 0.0;  // finish - arrival
  EstimatorScore single;
  EstimatorScore multi;
};

/// Rolling aggregates over every query scored so far.
struct AccuracyAggregate {
  std::uint64_t queries_scored = 0;
  std::uint64_t queries_aborted = 0;
  double mean_mape_single = kUnknown;
  double mean_mape_multi = kUnknown;
  double mean_bias_single = kUnknown;
  double mean_bias_multi = kUnknown;
  std::uint64_t monotonicity_violations_single = 0;
  std::uint64_t monotonicity_violations_multi = 0;
  /// Mean converged_fraction over queries that did converge.
  double mean_converged_fraction_single = kUnknown;
  double mean_converged_fraction_multi = kUnknown;
  std::uint64_t never_converged_single = 0;
  std::uint64_t never_converged_multi = 0;
};

struct AuditorOptions {
  /// Trajectory length cap per live query; later samples are dropped
  /// (counted, not scored) so a runaway query cannot grow memory.
  std::size_t max_samples_per_query = 4096;
  /// Completed per-query reports retained for ReportFor()/Completed().
  std::size_t retain_completed = 1024;
  /// Relative-error band for convergence detection.
  double convergence_band = 0.10;
  /// Samples whose true remaining time is below this fraction of the
  /// query lifetime are excluded from MAPE/bias: relative error against
  /// a truth of ~0 is noise, not signal.
  double min_truth_fraction = 0.02;
  /// Absolute slack subtracted from |estimate - truth| before a sample
  /// is scored. Ground truth is only known to the publisher's time
  /// resolution — the scheduler stamps finish times at quantum ends and
  /// snapshots sample estimates once per quantum — so sub-resolution
  /// disagreement is measurement noise, not estimator error. 0 scores
  /// raw errors; PiService defaults this to two scheduler quanta.
  double truth_resolution = 0.0;
};

class EstimateAuditor {
 public:
  explicit EstimateAuditor(AuditorOptions options = {});

  /// Feeds one observation. On the first terminal observation of a
  /// query, scores its trajectory and returns the completed record
  /// (callers use this to publish metrics); returns nullopt otherwise.
  std::optional<QueryAccuracy> Observe(const EstimateObservation& obs);

  /// Most recent completed reports, oldest first (bounded).
  std::vector<QueryAccuracy> Completed() const;

  /// Completed report for one query; NotFound if unknown or evicted.
  Result<QueryAccuracy> ReportFor(QueryId id) const;

  AccuracyAggregate Aggregate() const;

  /// Human-readable dump: the aggregate plus the most recent per-query
  /// lines (the shell's `accuracy` command).
  std::string RenderText(std::size_t max_recent = 10) const;

  /// Queries currently being tracked (live, not yet terminal).
  std::size_t live_queries() const;

  void Clear();

  const AuditorOptions& options() const { return options_; }

 private:
  struct Sample {
    SimTime time = 0.0;
    SimTime single = kUnknown;
    SimTime multi = kUnknown;
  };
  struct LiveQuery {
    Priority priority = Priority::kNormal;
    SimTime arrival_time = 0.0;
    std::vector<Sample> samples;
  };

  EstimatorScore ScoreTrajectory(const std::vector<Sample>& samples,
                                 SimTime arrival, SimTime finish,
                                 bool use_single) const;

  AuditorOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<QueryId, LiveQuery> live_;
  std::unordered_set<QueryId> scored_;  // terminal ids, never re-scored
  std::deque<QueryAccuracy> completed_;

  // Running aggregate sums (scored queries only).
  std::uint64_t queries_scored_ = 0;
  std::uint64_t queries_aborted_ = 0;
  double sum_mape_single_ = 0.0, sum_mape_multi_ = 0.0;
  std::uint64_t n_mape_single_ = 0, n_mape_multi_ = 0;
  double sum_bias_single_ = 0.0, sum_bias_multi_ = 0.0;
  std::uint64_t mono_single_ = 0, mono_multi_ = 0;
  double sum_conv_single_ = 0.0, sum_conv_multi_ = 0.0;
  std::uint64_t n_conv_single_ = 0, n_conv_multi_ = 0;
  std::uint64_t never_conv_single_ = 0, never_conv_multi_ = 0;
};

}  // namespace mqpi::obs
