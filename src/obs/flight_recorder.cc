#include "obs/flight_recorder.h"

#include <algorithm>
#include <fstream>

namespace mqpi::obs {

std::string_view FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kSpan: return "span";
    case FlightEventKind::kFault: return "fault";
    case FlightEventKind::kSequenceGap: return "seq_gap";
    case FlightEventKind::kShed: return "shed";
    case FlightEventKind::kTrigger: return "trigger";
    case FlightEventKind::kNote: return "note";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(std::move(options)),
      enabled_(options_.enabled),
      epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t FlightRecorder::NowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void FlightRecorder::Record(FlightEventKind kind, const char* category,
                            const char* name, double value,
                            std::uint64_t sequence) {
  if (!enabled()) return;
  FlightEvent event;
  event.kind = kind;
  event.category = category;
  event.name = name;
  event.ts_ns = NowNs();
  event.value = value;
  event.sequence = sequence;
  recorded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) {
    ring_.resize(options_.capacity == 0 ? 1 : options_.capacity);
  }
  ring_[next_] = event;
  next_ = (next_ + 1) % ring_.size();
  ++count_;
}

void FlightRecorder::ObserveGap(const char* category, const char* name,
                                std::uint64_t expected, std::uint64_t got) {
  if (!enabled() || got == expected) return;
  Record(FlightEventKind::kSequenceGap, category, name,
         static_cast<double>(got) - static_cast<double>(expected), got);
}

std::string FlightRecorder::Trigger(const char* reason) {
  triggers_.fetch_add(1, std::memory_order_relaxed);
  last_trigger_.store(reason, std::memory_order_relaxed);
  Record(FlightEventKind::kTrigger, "flight", reason);
  if (!options_.auto_dump) return "";

  // Throttle: a flapping trigger must not flood the disk. The CAS on
  // last_dump_ns_ makes concurrent triggers race for one dump slot.
  const std::uint64_t now = NowNs();
  const auto interval_ns = static_cast<std::uint64_t>(
      options_.min_dump_interval_s * 1e9);
  std::uint64_t last = last_dump_ns_.load(std::memory_order_relaxed);
  if (last != 0 && now - last < interval_ns) return "";
  if (!last_dump_ns_.compare_exchange_strong(last, now == 0 ? 1 : now,
                                             std::memory_order_relaxed)) {
    return "";
  }
  const std::uint64_t n = dumps_.fetch_add(1, std::memory_order_relaxed);
  if (n >= options_.max_dumps) {
    dumps_.fetch_sub(1, std::memory_order_relaxed);
    return "";
  }
  std::string path = options_.dump_dir + "/flight_" + std::to_string(n) +
                     "_" + reason + ".jsonl";
  if (!WriteJsonl(path).ok()) return "";
  return path;
}

std::vector<FlightEvent> FlightRecorder::Events() const {
  std::vector<FlightEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return out;
  const std::uint64_t retained =
      std::min<std::uint64_t>(count_, ring_.size());
  std::size_t at = count_ > ring_.size() ? next_ : 0;
  out.reserve(retained);
  for (std::uint64_t i = 0; i < retained; ++i) {
    out.push_back(ring_[at]);
    at = (at + 1) % ring_.size();
  }
  return out;
}

std::string FlightRecorder::DumpString() const {
  // Render through the Tracer's JSONL path: one escaped JSON object
  // per line, kind and sequence carried as args.
  std::string out;
  for (const FlightEvent& event : Events()) {
    TraceEvent trace;
    trace.category = event.category;
    trace.name = event.name;
    trace.phase = event.kind == FlightEventKind::kSpan
                      ? TracePhase::kComplete
                      : TracePhase::kInstant;
    trace.ts_ns = event.ts_ns;
    if (trace.phase == TracePhase::kComplete) {
      trace.dur_ns = static_cast<std::uint64_t>(
          event.value > 0.0 ? event.value : 0.0);
    }
    trace.arg1_key = "value";
    trace.arg1 = event.value;
    if (event.sequence != 0) {
      trace.arg2_key = "seq";
      trace.arg2 = static_cast<double>(event.sequence);
    }
    out += RenderTraceEventJson(trace);
    out += "\n";
  }
  return out;
}

Status FlightRecorder::WriteJsonl(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open '" + path + "' for write");
  }
  file << DumpString();
  file.flush();
  if (!file) return Status::InvalidArgument("write to '" + path + "' failed");
  return Status::OK();
}

std::string FlightRecorder::Summary() const {
  std::uint64_t retained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    retained = std::min<std::uint64_t>(count_, ring_.size());
  }
  std::string out = "flight_recorder: ";
  out += enabled() ? "enabled" : "disabled";
  out += " events=" + std::to_string(retained);
  out += " recorded=" + std::to_string(recorded());
  out += " triggers=" + std::to_string(triggers());
  out += " dumps=" + std::to_string(dumps());
  const char* last = last_trigger();
  if (last[0] != '\0') {
    out += " last_trigger=";
    out += last;
  }
  out += "\n";
  return out;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  count_ = 0;
}

}  // namespace mqpi::obs
