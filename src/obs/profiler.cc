#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <memory>

namespace mqpi::obs {

thread_local ProfScope* ProfScope::current_ = nullptr;

namespace {

/// EWMA smoothing: new = old + (sample - old) / 16. Integer-free to
/// keep fractional decay; the racy read-modify-write loses precision
/// under contention, never correctness (it is a smoothed diagnostic).
constexpr double kEwmaAlpha = 1.0 / 16.0;

}  // namespace

void ProfSite::Record(std::uint64_t ns) {
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns,
                                        std::memory_order_relaxed)) {
  }
  const double old = ewma_ns_.load(std::memory_order_relaxed);
  const double next = old == 0.0
                          ? static_cast<double>(ns)
                          : old + (static_cast<double>(ns) - old) * kEwmaAlpha;
  ewma_ns_.store(next, std::memory_order_relaxed);
}

void ProfSite::Reset() {
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
  child_ns_.store(0, std::memory_order_relaxed);
  ewma_ns_.store(0.0, std::memory_order_relaxed);
}

ProfSite* Profiler::Site(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& site : sites_) {
    if (std::string_view(site->name()) == name) return site.get();
  }
  sites_.push_back(std::make_unique<ProfSite>(name));
  return sites_.back().get();
}

std::vector<ProfSiteSnapshot> Profiler::Snapshot() const {
  std::vector<ProfSiteSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(sites_.size());
    for (const auto& site : sites_) {
      ProfSiteSnapshot snap;
      snap.name = site->name();
      snap.count = site->count();
      snap.total_ns = site->total_ns();
      snap.max_ns = site->max_ns();
      snap.child_ns = site->child_ns();
      snap.self_ns =
          snap.total_ns > snap.child_ns ? snap.total_ns - snap.child_ns : 0;
      snap.ewma_ns = site->ewma_ns();
      snap.mean_ns = snap.count > 0 ? static_cast<double>(snap.total_ns) /
                                          static_cast<double>(snap.count)
                                    : 0.0;
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ProfSiteSnapshot& a, const ProfSiteSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string Profiler::Summary() const {
  std::string out = enabled() ? "profiler: enabled\n" : "profiler: disabled\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-32s %10s %12s %12s %12s %12s %12s\n",
                "site", "count", "mean_ns", "ewma_ns", "max_ns", "self_ms",
                "total_ms");
  out += line;
  for (const auto& site : Snapshot()) {
    std::snprintf(line, sizeof(line),
                  "%-32s %10llu %12.0f %12.0f %12llu %12.3f %12.3f\n",
                  site.name.c_str(),
                  static_cast<unsigned long long>(site.count), site.mean_ns,
                  site.ewma_ns, static_cast<unsigned long long>(site.max_ns),
                  static_cast<double>(site.self_ns) / 1e6,
                  static_cast<double>(site.total_ns) / 1e6);
    out += line;
  }
  return out;
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& site : sites_) site->Reset();
}

Profiler* GlobalProfiler() {
  static Profiler profiler;
  return &profiler;
}

}  // namespace mqpi::obs
