#include "obs/auditor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mqpi::obs {

namespace {

bool UsableEstimate(SimTime estimate) {
  return estimate != kUnknown && estimate >= 0.0 &&
         estimate < kInfiniteTime && !std::isnan(estimate);
}

std::string FormatMetric(double v) {
  if (v == kUnknown) return "?";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

EstimateAuditor::EstimateAuditor(AuditorOptions options)
    : options_(options) {}

EstimatorScore EstimateAuditor::ScoreTrajectory(
    const std::vector<Sample>& samples, SimTime arrival, SimTime finish,
    bool use_single) const {
  EstimatorScore score;
  const double lifetime = std::max(finish - arrival, kTimeEpsilon);
  const double min_truth =
      std::max(options_.min_truth_fraction * lifetime, kTimeEpsilon);

  double sum_abs = 0.0;
  double sum_signed = 0.0;
  SimTime previous_estimate = kUnknown;
  // Convergence: the last sample that *violated* the band decides;
  // everything after it was trustworthy.
  SimTime last_violation_after = kUnknown;  // time of first in-band
                                            // sample after the last
                                            // violation
  bool any_in_band_after_violation = false;
  bool saw_violation = false;
  SimTime first_usable = kUnknown;

  for (const Sample& sample : samples) {
    const SimTime estimate = use_single ? sample.single : sample.multi;
    if (!UsableEstimate(estimate)) continue;

    // Monotonicity: remaining time should count down between samples.
    if (previous_estimate != kUnknown &&
        estimate > previous_estimate + 1e-6) {
      ++score.monotonicity_violations;
    }
    previous_estimate = estimate;

    const double truth = finish - sample.time;
    if (truth < min_truth) continue;  // endgame noise, not signal

    const double diff = estimate - truth;
    const double magnitude =
        std::max(std::abs(diff) - options_.truth_resolution, 0.0);
    const double rel = std::copysign(magnitude, diff) / truth;
    ++score.samples;
    sum_abs += std::abs(rel);
    sum_signed += rel;
    if (first_usable == kUnknown) first_usable = sample.time;

    if (std::abs(rel) > options_.convergence_band) {
      saw_violation = true;
      any_in_band_after_violation = false;
      last_violation_after = kUnknown;
    } else if (saw_violation && !any_in_band_after_violation) {
      any_in_band_after_violation = true;
      last_violation_after = sample.time;
    }
  }

  if (score.samples > 0) {
    score.mape = sum_abs / score.samples;
    score.bias = sum_signed / score.samples;
    if (!saw_violation) {
      score.converged_at = first_usable;
    } else if (any_in_band_after_violation) {
      score.converged_at = last_violation_after;
    }
    if (score.converged_at != kUnknown) {
      score.converged_fraction = std::clamp(
          (score.converged_at - arrival) / lifetime, 0.0, 1.0);
    }
  }
  return score;
}

std::optional<QueryAccuracy> EstimateAuditor::Observe(
    const EstimateObservation& obs) {
  if (obs.id == kInvalidQueryId) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  if (scored_.count(obs.id) > 0) return std::nullopt;

  if (!obs.terminal) {
    LiveQuery& live = live_[obs.id];
    live.priority = obs.priority;
    live.arrival_time = obs.arrival_time;
    if (live.samples.size() < options_.max_samples_per_query) {
      live.samples.push_back(
          Sample{obs.time, obs.eta_single, obs.eta_multi});
    }
    return std::nullopt;
  }

  // Terminal: score whatever trajectory we have and retire the query.
  scored_.insert(obs.id);
  QueryAccuracy report;
  report.id = obs.id;
  report.priority = obs.priority;
  report.finished = obs.finished;
  report.arrival_time = obs.arrival_time;
  report.finish_time = obs.finish_time;
  report.lifetime =
      obs.finish_time != kUnknown ? obs.finish_time - obs.arrival_time : 0.0;

  auto it = live_.find(obs.id);
  if (obs.finished && obs.finish_time != kUnknown && it != live_.end()) {
    report.single = ScoreTrajectory(it->second.samples, obs.arrival_time,
                                    obs.finish_time, /*use_single=*/true);
    report.multi = ScoreTrajectory(it->second.samples, obs.arrival_time,
                                   obs.finish_time, /*use_single=*/false);
  }
  if (it != live_.end()) live_.erase(it);

  if (report.finished) {
    ++queries_scored_;
    auto fold = [](const EstimatorScore& s, double* sum_mape,
                   std::uint64_t* n_mape, double* sum_bias,
                   std::uint64_t* mono, double* sum_conv,
                   std::uint64_t* n_conv, std::uint64_t* never_conv) {
      if (s.mape != kUnknown) {
        *sum_mape += s.mape;
        *sum_bias += s.bias;
        ++*n_mape;
        if (s.converged_fraction != kUnknown) {
          *sum_conv += s.converged_fraction;
          ++*n_conv;
        } else {
          ++*never_conv;
        }
      }
      *mono += static_cast<std::uint64_t>(s.monotonicity_violations);
    };
    fold(report.single, &sum_mape_single_, &n_mape_single_,
         &sum_bias_single_, &mono_single_, &sum_conv_single_,
         &n_conv_single_, &never_conv_single_);
    fold(report.multi, &sum_mape_multi_, &n_mape_multi_, &sum_bias_multi_,
         &mono_multi_, &sum_conv_multi_, &n_conv_multi_,
         &never_conv_multi_);
  } else {
    ++queries_aborted_;
  }

  completed_.push_back(report);
  while (completed_.size() > options_.retain_completed) {
    completed_.pop_front();
  }
  return report;
}

std::vector<QueryAccuracy> EstimateAuditor::Completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {completed_.begin(), completed_.end()};
}

Result<QueryAccuracy> EstimateAuditor::ReportFor(QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = completed_.rbegin(); it != completed_.rend(); ++it) {
    if (it->id == id) return *it;
  }
  return Status::NotFound("no completed accuracy report for query " +
                          std::to_string(id));
}

AccuracyAggregate EstimateAuditor::Aggregate() const {
  std::lock_guard<std::mutex> lock(mu_);
  AccuracyAggregate agg;
  agg.queries_scored = queries_scored_;
  agg.queries_aborted = queries_aborted_;
  if (n_mape_single_ > 0) {
    agg.mean_mape_single = sum_mape_single_ / n_mape_single_;
    agg.mean_bias_single = sum_bias_single_ / n_mape_single_;
  }
  if (n_mape_multi_ > 0) {
    agg.mean_mape_multi = sum_mape_multi_ / n_mape_multi_;
    agg.mean_bias_multi = sum_bias_multi_ / n_mape_multi_;
  }
  agg.monotonicity_violations_single = mono_single_;
  agg.monotonicity_violations_multi = mono_multi_;
  if (n_conv_single_ > 0) {
    agg.mean_converged_fraction_single = sum_conv_single_ / n_conv_single_;
  }
  if (n_conv_multi_ > 0) {
    agg.mean_converged_fraction_multi = sum_conv_multi_ / n_conv_multi_;
  }
  agg.never_converged_single = never_conv_single_;
  agg.never_converged_multi = never_conv_multi_;
  return agg;
}

std::size_t EstimateAuditor::live_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

std::string EstimateAuditor::RenderText(std::size_t max_recent) const {
  const AccuracyAggregate agg = Aggregate();
  std::string out = "estimate accuracy: " +
                    std::to_string(agg.queries_scored) + " scored, " +
                    std::to_string(agg.queries_aborted) + " aborted\n";
  auto line = [&](const char* name, double mape, double bias,
                  std::uint64_t mono, double conv,
                  std::uint64_t never_conv) {
    out += "  ";
    out += name;
    out += ": MAPE " + FormatMetric(mape) + "  bias " + FormatMetric(bias) +
           "  monotonicity-violations " + std::to_string(mono) +
           "  convergence " + FormatMetric(conv) + " of lifetime (" +
           std::to_string(never_conv) + " never)\n";
  };
  line("single", agg.mean_mape_single, agg.mean_bias_single,
       agg.monotonicity_violations_single,
       agg.mean_converged_fraction_single, agg.never_converged_single);
  line("multi ", agg.mean_mape_multi, agg.mean_bias_multi,
       agg.monotonicity_violations_multi,
       agg.mean_converged_fraction_multi, agg.never_converged_multi);

  std::vector<QueryAccuracy> recent = Completed();
  if (recent.size() > max_recent) {
    recent.erase(recent.begin(),
                 recent.end() - static_cast<std::ptrdiff_t>(max_recent));
  }
  if (!recent.empty()) out += "recent queries:\n";
  for (const QueryAccuracy& q : recent) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  #%llu %-8s %s lifetime %.1fs  single[mape %s] "
                  "multi[mape %s]\n",
                  static_cast<unsigned long long>(q.id),
                  std::string(PriorityName(q.priority)).c_str(),
                  q.finished ? "finished" : "aborted ", q.lifetime,
                  FormatMetric(q.single.mape).c_str(),
                  FormatMetric(q.multi.mape).c_str());
    out += buf;
  }
  return out;
}

void EstimateAuditor::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  live_.clear();
  scored_.clear();
  completed_.clear();
  queries_scored_ = queries_aborted_ = 0;
  sum_mape_single_ = sum_mape_multi_ = 0.0;
  n_mape_single_ = n_mape_multi_ = 0;
  sum_bias_single_ = sum_bias_multi_ = 0.0;
  mono_single_ = mono_multi_ = 0;
  sum_conv_single_ = sum_conv_multi_ = 0.0;
  n_conv_single_ = n_conv_multi_ = 0;
  never_conv_single_ = never_conv_multi_ = 0;
}

}  // namespace mqpi::obs
