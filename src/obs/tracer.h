// Tracer: the always-available runtime event recorder — a bounded,
// lock-striped ring buffer of spans and instant events that the whole
// stack (Rdbms::Step quanta, PiManager recomputations, snapshot
// publication, WLM decisions) writes into when tracing is enabled.
//
// Design goals, in order:
//   1. Tracing-off overhead must be negligible: every entry point is a
//      single relaxed atomic load (`enabled()`); call sites cache the
//      tracer pointer, and `TraceSpan` degrades to a no-op object.
//   2. Bounded memory: events land in per-stripe fixed-capacity rings
//      (stripe chosen by thread id, so unrelated threads rarely share a
//      lock). When a ring is full the *oldest* events are overwritten —
//      a trace always holds the most recent window — and the overwrite
//      count is reported as `dropped()`.
//   3. Standard export: `ExportJsonl` (one JSON object per line, easy
//      to grep) and `ExportChromeTrace` (the Chrome `trace_event` JSON
//      array format, openable in chrome://tracing or Perfetto).
//
// Strings passed as `category` / `name` / arg keys must be string
// literals (static storage, JSON-safe): events store the pointers only,
// which is what keeps recording allocation-free.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace mqpi::obs {

/// Chrome trace_event phases this tracer emits.
enum class TracePhase : char {
  kComplete = 'X',  // span with a duration
  kInstant = 'i',   // point event
  kCounter = 'C',   // sampled numeric series
};

/// One recorded event. Plain value type, fixed size, no allocation.
struct TraceEvent {
  const char* category = "";
  const char* name = "";
  TracePhase phase = TracePhase::kInstant;
  /// Wall-clock nanoseconds since the tracer's construction.
  std::uint64_t ts_ns = 0;
  /// Span duration (complete events only).
  std::uint64_t dur_ns = 0;
  /// Small dense id of the recording thread.
  std::uint32_t tid = 0;
  /// Global record sequence — total order across stripes.
  std::uint64_t seq = 0;
  /// Subject query, if any (rendered as args.query).
  QueryId query = kInvalidQueryId;
  /// Up to two numeric arguments with literal keys.
  const char* arg1_key = nullptr;
  double arg1 = 0.0;
  const char* arg2_key = nullptr;
  double arg2 = 0.0;
};

/// Renders one event as a single Chrome-trace-style JSON object
/// (`{"ts":..,"ph":"X","cat":..,"name":..,...}`, timestamps in
/// microseconds). String fields are JSON-escaped. Shared by the
/// Tracer's exports and the FlightRecorder's dumps.
std::string RenderTraceEventJson(const TraceEvent& event);

struct TracerOptions {
  /// Total event capacity, split across the stripes. Rings are
  /// allocated lazily on each stripe's first event.
  std::size_t capacity = 16384;
  /// Number of independently locked rings.
  std::size_t stripes = 8;
  /// Start enabled? Default off: zero cost until someone opts in.
  bool enabled = false;
};

class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});

  /// The hot-path gate: one relaxed atomic load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Records `event`, stamping timestamp, thread id, and sequence
  /// number. No-op while disabled.
  void Record(TraceEvent event);

  /// Convenience recorders (all no-ops while disabled).
  void Instant(const char* category, const char* name,
               QueryId query = kInvalidQueryId,
               const char* arg_key = nullptr, double arg = 0.0);
  void CounterValue(const char* category, const char* name, double value);

  /// All retained events, merged across stripes in record order.
  std::vector<TraceEvent> Events() const;

  /// Events ever recorded (including overwritten ones).
  std::uint64_t recorded() const;
  /// Events lost to ring overwrites — the drop policy is oldest-first.
  std::uint64_t dropped() const;

  void Clear();

  /// One JSON object per line: {"ts":..,"ph":"X","cat":..,"name":..,...}.
  /// Timestamps are microseconds (Chrome convention).
  void ExportJsonl(std::ostream& os) const;
  /// The Chrome trace_event format: {"traceEvents":[...]}. Open the
  /// file in chrome://tracing or https://ui.perfetto.dev.
  void ExportChromeTrace(std::ostream& os) const;
  Status WriteJsonl(const std::string& path) const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::vector<TraceEvent> ring;  // allocated on first event
    std::size_t next = 0;          // ring insertion cursor
    std::uint64_t count = 0;       // events ever recorded here
  };

  Stripe& StripeForThisThread();

  TracerOptions options_;
  std::size_t stripe_capacity_;
  std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> seq_{0};
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

/// The process-wide tracer every subsystem records into. Disabled by
/// default; `PiService::tracer()` and the shell's `trace on` enable it.
Tracer* GlobalTracer();

/// RAII span: records a complete event covering its lifetime. If
/// tracing is off at construction the span is inert (no clock read, no
/// destructor work beyond a null check).
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* category, const char* name,
            QueryId query = kInvalidQueryId)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr) {
    if (tracer_ == nullptr) return;
    event_.category = category;
    event_.name = name;
    event_.phase = TracePhase::kComplete;
    event_.query = query;
    start_ = std::chrono::steady_clock::now();
  }

  ~TraceSpan() {
    if (tracer_ == nullptr) return;
    event_.dur_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    tracer_->Record(event_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric argument (first two stick, extras dropped).
  void arg(const char* key, double value) {
    if (tracer_ == nullptr) return;
    if (event_.arg1_key == nullptr) {
      event_.arg1_key = key;
      event_.arg1 = value;
    } else if (event_.arg2_key == nullptr) {
      event_.arg2_key = key;
      event_.arg2 = value;
    }
  }

 private:
  Tracer* tracer_;
  TraceEvent event_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mqpi::obs
