// Profiler: the hot-path cost accountant — scoped, hierarchical,
// always compiled in, and free when off.
//
// Where the Tracer answers "what happened, in order" (a bounded event
// log), the profiler answers "where do the nanoseconds go, per site":
// each instrumented scope (`Rdbms::Step`, the estimate/forecast pass,
// `BuildSnapshotLocked`, the publish hook, fan-out delta-encode,
// socket writes...) accumulates count / total ns / max ns / an EWMA of
// recent span cost, so every quantum has a standing cost breakdown the
// /statusz endpoint and STATS consumers can read live.
//
// Design rules, in the Tracer's tradition:
//   1. Off means off: every entry point is one relaxed atomic load
//      (`enabled()`); a ProfSpan constructed while disabled is inert
//      (no clock read, no registration, destructor is a null check).
//   2. Sites are static: a call site names its site once with a string
//      literal (`MQPI_PROF_SITE`), gets a stable `ProfSite*` back, and
//      records into plain relaxed atomics from then on — recording
//      never takes a lock and never allocates.
//   3. Hierarchy by scope nesting: spans form a per-thread stack; a
//      child's duration is charged to the parent's `child_ns` so
//      `self_ns = total_ns - child_ns` falls out without the profiler
//      ever walking a tree.
//
// Readers (Snapshot / Summary) see a consistent-enough view: relaxed
// counters may be a few events apart mid-scrape, which is fine for an
// operational cost breakdown and keeps the hot path untouched.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mqpi::obs {

/// One instrumented scope's accumulators. All fields are relaxed
/// atomics: recording threads add, scrapers read, nobody blocks.
class ProfSite {
 public:
  explicit ProfSite(const char* name) : name_(name) {}

  const char* name() const { return name_; }

  /// Fold one completed span of `ns` nanoseconds into the site.
  void Record(std::uint64_t ns);
  /// Charge a completed child span's duration to this site.
  void AddChild(std::uint64_t ns) {
    child_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_ns() const {
    return max_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t child_ns() const {
    return child_ns_.load(std::memory_order_relaxed);
  }
  /// Exponentially weighted moving average of recent span costs
  /// (alpha = 1/16); tracks "what does this site cost right now".
  double ewma_ns() const { return ewma_ns_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  const char* name_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
  std::atomic<std::uint64_t> child_ns_{0};
  std::atomic<double> ewma_ns_{0.0};
};

/// Point-in-time copy of one site, for renderers.
struct ProfSiteSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
  /// Nanoseconds spent in instrumented child scopes (hierarchy).
  std::uint64_t child_ns = 0;
  /// total - child, clamped at 0 (children may outpace the parent's
  /// own record by a few in-flight spans mid-scrape).
  std::uint64_t self_ns = 0;
  double ewma_ns = 0.0;
  double mean_ns = 0.0;
};

class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// The hot-path gate: one relaxed atomic load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Returns the stable site for `name` (registered on first use).
  /// `name` must be a string literal (static storage) — sites keep the
  /// pointer. Registration takes a lock; call it once and cache the
  /// pointer (MQPI_PROF_SITE does exactly that).
  ProfSite* Site(const char* name);

  /// All registered sites, sorted by name.
  std::vector<ProfSiteSnapshot> Snapshot() const;

  /// Human-readable per-site table (the /statusz body): one line per
  /// site with count, mean/ewma/max ns, and self vs total time.
  std::string Summary() const;

  /// Zero every site's accumulators (sites stay registered).
  void Reset();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards registration only, never recording
  std::vector<std::unique_ptr<ProfSite>> sites_;
};

/// The process-wide profiler every subsystem records into. Disabled by
/// default; `PiService` enables it when options request, or callers
/// flip it directly.
Profiler* GlobalProfiler();

/// RAII scope: records one span into `site` on destruction and charges
/// the duration to the enclosing ProfScope's site (per-thread stack).
/// Inert (a single relaxed load, nothing else) when the profiler is
/// off at construction.
class ProfScope {
 public:
  ProfScope(Profiler* profiler, ProfSite* site)
      : site_(profiler != nullptr && site != nullptr && profiler->enabled()
                  ? site
                  : nullptr) {
    if (site_ == nullptr) return;
    parent_ = current_;
    current_ = this;
    start_ = std::chrono::steady_clock::now();
  }

  ~ProfScope() {
    if (site_ == nullptr) return;
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    site_->Record(ns);
    if (parent_ != nullptr && parent_->site_ != nullptr) {
      parent_->site_->AddChild(ns);
    }
    current_ = parent_;
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfSite* site_;
  ProfScope* parent_ = nullptr;
  std::chrono::steady_clock::time_point start_;

  static thread_local ProfScope* current_;
};

/// Declares a function-local cached site and opens a ProfScope over it:
///   MQPI_PROF_SITE(scope_var, "service.step_quantum");
/// The Site() lookup (lock + vector scan) runs once per call site.
#define MQPI_PROF_SITE(var, name)                                     \
  static ::mqpi::obs::ProfSite* var##_site =                          \
      ::mqpi::obs::GlobalProfiler()->Site(name);                      \
  ::mqpi::obs::ProfScope var(::mqpi::obs::GlobalProfiler(), var##_site)

}  // namespace mqpi::obs
