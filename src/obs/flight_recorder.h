// FlightRecorder: the black box. A bounded ring of recent telemetry
// events — per-quantum step spans, fault firings, snapshot sequence
// gaps, consumer sheds — that is always recording (cheap: one mutex'd
// ring write per event, a handful of events per quantum) and dumps its
// window as JSONL the moment something goes wrong, so the moments
// *before* an incident are preserved without anyone having had tracing
// enabled in advance.
//
// Dump triggers (wired in by PiService / net::PiServer):
//   - the ticker watchdog replaces a stalled ticker thread,
//   - a slow consumer is shed at the network edge,
//   - a degraded snapshot is published (staleness past threshold).
// Triggers are throttled (`min_dump_interval_s`, `max_dumps`) so a
// flapping system cannot flood the disk, and every trigger is counted
// and visible in /statusz even when file dumps are off.
//
// Export rides the Tracer's JSONL path: events are rendered with the
// same JSON-escaped renderer (obs::RenderTraceEventJson), so a flight
// dump greps and parses exactly like a tracer export.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "obs/tracer.h"

namespace mqpi::obs {

enum class FlightEventKind : std::uint8_t {
  kSpan = 0,         // a completed scope (e.g. one step_and_publish)
  kFault = 1,        // a fault point fired
  kSequenceGap = 2,  // published/delivered sequences skipped
  kShed = 3,         // a slow consumer was shed
  kTrigger = 4,      // a dump trigger fired
  kNote = 5,         // anything else worth keeping in the window
};

std::string_view FlightEventKindName(FlightEventKind kind);

/// One retained event. Plain value type; `category`/`name` must be
/// string literals (static storage), which keeps recording
/// allocation-free exactly like the Tracer's events.
struct FlightEvent {
  FlightEventKind kind = FlightEventKind::kNote;
  const char* category = "";
  const char* name = "";
  /// Wall-clock nanoseconds since the recorder's construction.
  std::uint64_t ts_ns = 0;
  /// Kind-specific magnitude (span ns, fault value, gap width...).
  double value = 0.0;
  /// Snapshot sequence the event refers to (0 = none).
  std::uint64_t sequence = 0;
};

struct FlightRecorderOptions {
  /// Ring capacity; oldest events are overwritten.
  std::size_t capacity = 4096;
  /// Recording gate. Default on — a black box that must be armed by
  /// hand records nothing when the crash comes.
  bool enabled = true;
  /// Write a JSONL file per (unthrottled) trigger. Off by default so
  /// tests and libraries never litter the filesystem; servers opt in.
  bool auto_dump = false;
  /// Directory for auto-dump files (`flight_<n>_<reason>.jsonl`).
  std::string dump_dir = ".";
  /// Minimum wall seconds between file dumps.
  double min_dump_interval_s = 5.0;
  /// Lifetime cap on file dumps.
  std::size_t max_dumps = 16;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The hot-path gate: one relaxed atomic load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Records one event (timestamp stamped here). No-op while disabled.
  void Record(FlightEventKind kind, const char* category, const char* name,
              double value = 0.0, std::uint64_t sequence = 0);

  /// Sequence-gap watch: callers hold their own cursor and report the
  /// sequence they expected next vs the one they got; a mismatch is
  /// recorded as a kSequenceGap event (value = got - expected, i.e.
  /// how many sequences were skipped; negative = regression). `name`
  /// distinguishes the stream ("published", "conn_push", ...).
  void ObserveGap(const char* category, const char* name,
                  std::uint64_t expected, std::uint64_t got);

  /// A dump trigger: records a kTrigger event and, when auto_dump is
  /// on and not throttled, writes the ring as JSONL. Returns the file
  /// path written, or "" (throttled / auto_dump off / write failed).
  /// `reason` must be a string literal.
  std::string Trigger(const char* reason);

  /// All retained events, oldest first.
  std::vector<FlightEvent> Events() const;

  /// The ring rendered as JSONL (one Tracer-style object per line).
  std::string DumpString() const;
  Status WriteJsonl(const std::string& path) const;

  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  std::uint64_t triggers() const {
    return triggers_.load(std::memory_order_relaxed);
  }
  std::uint64_t dumps() const {
    return dumps_.load(std::memory_order_relaxed);
  }
  /// Last trigger reason ("" before the first); a string literal.
  const char* last_trigger() const {
    return last_trigger_.load(std::memory_order_relaxed);
  }

  /// Short operational summary for /statusz.
  std::string Summary() const;

  void Clear();

 private:
  std::uint64_t NowNs() const;

  const FlightRecorderOptions options_;
  std::atomic<bool> enabled_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<FlightEvent> ring_;  // allocated on first event
  std::size_t next_ = 0;
  std::uint64_t count_ = 0;  // events ever recorded

  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> triggers_{0};
  std::atomic<std::uint64_t> dumps_{0};
  std::atomic<const char*> last_trigger_{""};
  std::atomic<std::uint64_t> last_dump_ns_{0};
};

}  // namespace mqpi::obs
