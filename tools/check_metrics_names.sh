#!/usr/bin/env bash
# Metric-name lint, run by ctest under the "lint" label.
#
# Every metric registered through the MetricsRegistry with a string
# literal — counter("..."), gauge("..."), histogram("...") in src/,
# examples/, and bench/ — must use the dotted.lowercase convention (two
# or more dot-separated segments of [a-z0-9_]), and one name must not be
# registered under two different instrument kinds (Prometheus exposition
# would emit conflicting # TYPE headers for the same family).
#
# Tests are deliberately out of scope: they register throwaway local
# names ("c", "h") to exercise the registry itself.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
names_file="$(mktemp)"
trap 'rm -f "$names_file"' EXIT
fail=0

# kind<space>name pairs, comments stripped so doc examples don't trip
# the lint.
grep -rh --include='*.cc' --include='*.h' --include='*.cpp' \
     -E '(counter|gauge|histogram)\("' \
     "$root/src" "$root/examples" "$root/bench" 2>/dev/null |
  sed 's|//.*||' |
  grep -oE '(counter|gauge|histogram)\("[^"]+"' |
  sed -E 's/\(\"/ /; s/\"$//' |
  sort -u > "$names_file"

if ! [ -s "$names_file" ]; then
  echo "check_metrics_names: found no metric registrations — wrong root?" >&2
  exit 1
fi

while read -r kind name; do
  if ! printf '%s' "$name" | grep -qE '^[a-z0-9_]+(\.[a-z0-9_]+)+$'; then
    echo "bad metric name: '$name' ($kind) — use dotted.lowercase" \
         "segments, e.g. service.submits" >&2
    fail=1
  fi
done < "$names_file"

dups="$(awk '{print $2}' "$names_file" | sort | uniq -d)"
for name in $dups; do
  kinds="$(awk -v n="$name" '$2 == n {print $1}' "$names_file" |
           tr '\n' ' ')"
  echo "metric name '$name' registered under multiple kinds: $kinds" >&2
  fail=1
done

# Counters the service contract promises to publish (dashboards and
# the estimate auditor key on them): renaming or dropping one must
# fail the lint, not silently vanish from the exposition.
required_counters="
pi.forecast_cache_hit
pi.forecast_cache_miss
pi.incremental_fast_path
pi.incremental_fallback
pi.incremental_resyncs
pi.batch_kernel_hits
pi.batch_kernel_regens
recover.journal_records
recover.journal_write_fails
recover.checkpoints_written
service.drains
net.client.reconnects
net.client.resubscribes
coord.merges
coord.rebalance_hints
"
for name in $required_counters; do
  if ! grep -q "^counter $name\$" "$names_file"; then
    echo "required counter '$name' is no longer registered anywhere" >&2
    fail=1
  fi
done

# Gauges the liveness contract shares between /healthz and the
# watchdog.
required_gauges="
service.uptime_quanta
service.ticker_last_step_age_quanta
coord.shards
"
for name in $required_gauges; do
  if ! grep -q "^gauge $name\$" "$names_file"; then
    echo "required gauge '$name' is no longer registered anywhere" >&2
    fail=1
  fi
done

# Histograms the telemetry plane promises: Prometheus scrapes key on
# the *_bucket families these expand into.
required_histograms="
net.publish_to_write_ns
step.wall_ms
coord.merge_ns
"
for name in $required_histograms; do
  if ! grep -q "^histogram $name\$" "$names_file"; then
    echo "required histogram '$name' is no longer registered anywhere" >&2
    fail=1
  fi
done

# Sharded /metrics exposition must keep injecting the shard label on
# every shard-scope registry dump (Grafana queries key on it).
if ! grep -rqE '\{\{"shard"' "$root/src/net/http_export.cc"; then
  echo "sharded /metrics no longer injects the shard=\"i\" label" >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "check_metrics_names: $(wc -l < "$names_file") metric names OK"
fi
exit "$fail"
