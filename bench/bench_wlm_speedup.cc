// Sections 3.1 / 3.2: quality of the victim-selection algorithms.
//
// The paper derives closed-form optimal victim choices but reports no
// dedicated figure for them; this bench validates the claims empirically
// and quantifies how much better the PI-guided choice is than the
// common heuristics the paper's introduction criticizes:
//   * "heaviest resource consumer" (largest weight, ties by cost) —
//     which can pick a victim that is about to finish, and
//   * a random victim.
//
// For random workloads we report the achieved time saving as a
// fraction of the optimal (brute-force) saving, for both the
// single-query speed-up (3.1) and the multiple-query speed-up (3.2),
// plus the live end-to-end effect of blocking on an Rdbms.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "sim/report.h"
#include "wlm/speedup.h"
#include "wlm/wlm_advisor.h"

using namespace mqpi;

namespace {

std::vector<pi::QueryLoad> RandomLoads(Rng* rng, int n, bool uniform) {
  std::vector<pi::QueryLoad> loads;
  for (int i = 0; i < n; ++i) {
    loads.push_back(pi::QueryLoad{
        static_cast<QueryId>(i + 1), rng->Uniform(10.0, 1000.0),
        uniform ? 1.0 : rng->Uniform(0.5, 8.0)});
  }
  return loads;
}

}  // namespace

int main() {
  bench::Banner(
      "Sections 3.1/3.2: victim selection quality vs heuristics",
      "the Section 3 algorithms achieve 100% of the brute-force optimal "
      "saving; heaviest-consumer and random victims lose a large share");

  const double rate = 100.0;
  const int trials = bench::NumRuns(200);
  Rng rng(bench::BaseSeed());

  sim::SeriesTable table(
      "Achieved saving as fraction of optimal (average over trials)",
      "num_queries",
      {"alg31_optimal_frac", "heaviest_frac", "random_frac",
       "alg32_optimal_frac"});

  for (int n : {3, 5, 10, 20, 40}) {
    RunningStats alg31, heaviest, random_pick, alg32;
    for (int trial = 0; trial < trials; ++trial) {
      const bool uniform = (trial % 2) == 0;
      auto loads = RandomLoads(&rng, n, uniform);
      const QueryId target = loads[static_cast<std::size_t>(
                                        rng.UniformInt(0, n - 1))]
                                 .id;

      // Brute-force optimum for the single-query problem.
      double best = 0.0;
      for (const auto& q : loads) {
        if (q.id == target) continue;
        best = std::max(best, *wlm::SingleQuerySpeedup::ExactBenefit(
                                  loads, target, q.id, rate));
      }
      if (best <= 1e-12) continue;  // nothing to gain in this instance

      const auto chosen =
          *wlm::SingleQuerySpeedup::ChooseVictims(loads, target, 1, rate);
      alg31.Observe(*wlm::SingleQuerySpeedup::ExactBenefit(
                        loads, target, chosen.victims[0], rate) /
                    best);

      // Heaviest resource consumer: max weight, ties by remaining cost.
      const pi::QueryLoad* heavy = nullptr;
      for (const auto& q : loads) {
        if (q.id == target) continue;
        if (heavy == nullptr || q.weight > heavy->weight ||
            (q.weight == heavy->weight &&
             q.remaining_cost > heavy->remaining_cost)) {
          heavy = &q;
        }
      }
      heaviest.Observe(*wlm::SingleQuerySpeedup::ExactBenefit(
                           loads, target, heavy->id, rate) /
                       best);

      // Random victim.
      QueryId victim = target;
      while (victim == target) {
        victim = loads[static_cast<std::size_t>(rng.UniformInt(0, n - 1))].id;
      }
      random_pick.Observe(*wlm::SingleQuerySpeedup::ExactBenefit(
                              loads, target, victim, rate) /
                          best);

      // Multiple-query speed-up vs its brute force.
      double best32 = 0.0;
      for (const auto& q : loads) {
        best32 = std::max(best32, *wlm::MultiQuerySpeedup::ExactImprovement(
                                      loads, q.id, rate));
      }
      if (best32 > 1e-12) {
        const auto chosen32 =
            *wlm::MultiQuerySpeedup::ChooseVictim(loads, rate);
        alg32.Observe(*wlm::MultiQuerySpeedup::ExactImprovement(
                          loads, chosen32.victim, rate) /
                      best32);
      }
    }
    table.AddRow(n, {alg31.mean(), heaviest.mean(), random_pick.mean(),
                     alg32.mean()});
  }
  table.PrintText();

  // Live end-to-end check: block h victims for a target on a running
  // system and measure the wall-clock gain (paper Section 3.1, h >= 1).
  std::printf("\nLive single-query speed-up on an Rdbms (h = 1..3):\n");
  for (int h = 1; h <= 3; ++h) {
    storage::Catalog catalog;
    sched::RdbmsOptions options;
    options.processing_rate = rate;
    options.quantum = 0.05;
    options.cost_model.noise_sigma = 0.0;
    // Baseline run.
    double baseline;
    QueryId target{};
    {
      sched::Rdbms db(&catalog, options);
      for (int i = 0; i < 5; ++i) {
        auto id = db.Submit(engine::QuerySpec::Synthetic(100.0 * (i + 2)));
        if (i == 0) target = *id;
      }
      db.RunUntilIdle();
      baseline = db.info(target)->finish_time;
    }
    // With h victims blocked at time 0.
    sched::Rdbms db(&catalog, options);
    QueryId target2{};
    for (int i = 0; i < 5; ++i) {
      auto id = db.Submit(engine::QuerySpec::Synthetic(100.0 * (i + 2)));
      if (i == 0) target2 = *id;
    }
    wlm::WlmAdvisor advisor(&db);
    auto choice = advisor.SpeedUpQuery(target2, h);
    db.RunUntilIdle();
    std::printf("  h=%d: target finish %.2f s -> %.2f s "
                "(predicted saving %.2f s, actual %.2f s)\n",
                h, baseline, db.info(target2)->finish_time,
                choice.ok() ? choice->time_saved : -1.0,
                baseline - db.info(target2)->finish_time);
  }
  return 0;
}
