// Table 1: the test data set.
//
//   paper:  lineitem  24M tuples   3.02 GB
//           part_i    10*N_i tuples  1.4*N_i KB
//
// We regenerate the same schema at a configurable scale factor and
// report tuple counts, page counts, and nominal sizes, plus the
// invariants the paper states: distinct random partkeys per part table
// and ~30 lineitem matches per part tuple.

#include <cstdio>

#include "bench_util.h"
#include "sim/report.h"

using namespace mqpi;

int main() {
  bench::Banner("Table 1: test data set",
                "lineitem with ~30 matches per partkey; part_i with "
                "10*N_i distinct random partkeys");

  auto fixture = bench::MakeWorkload(
      {.max_rank = 10, .a = 2.2, .n_scale = 10});

  const auto* lineitem = *fixture->catalog.GetTable("lineitem");
  const auto stats = *fixture->catalog.GetStats("lineitem");
  std::printf("lineitem: %zu tuples, %llu pages, %.2f MB "
              "(paper: 24M tuples, 3.02 GB; scale factor %.5f)\n",
              lineitem->num_tuples(),
              static_cast<unsigned long long>(lineitem->num_pages()),
              static_cast<double>(lineitem->size_bytes()) / (1024.0 * 1024.0),
              static_cast<double>(lineitem->num_tuples()) / 24e6);
  std::printf("lineitem distinct partkeys: %llu, avg matches per key: %.2f "
              "(paper: 30)\n\n",
              static_cast<unsigned long long>(stats.num_distinct_keys),
              stats.avg_matches_per_key);

  sim::SeriesTable table("part_i tables (N_i = 10 * i at this scale)", "i",
                         {"N_i", "tuples", "pages", "size_KB"});
  for (int i = 1; i <= 10; ++i) {
    const auto* part = *fixture->catalog.GetTable(
        storage::TpcrGenerator::PartTableName(i));
    table.AddRow(i, {static_cast<double>(10 * i),
                     static_cast<double>(part->num_tuples()),
                     static_cast<double>(part->num_pages()),
                     static_cast<double>(part->size_bytes()) / 1024.0});
  }
  table.PrintText();

  const auto* index = *fixture->catalog.GetIndex("lineitem_partkey_idx");
  std::printf("\nlineitem_partkey_idx: %zu entries, height %u, %llu pages\n",
              index->num_entries(), index->height(),
              static_cast<unsigned long long>(index->num_pages()));
  return 0;
}
