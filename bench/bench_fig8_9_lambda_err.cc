// Figures 8 and 9: SCQ with a misestimated arrival rate
// (Section 5.2.3, second part).
//
// True lambda = 0.03; the multi-query PI forecasts with lambda' swept
// over [0, 0.2]. Paper shape: the farther lambda' is from lambda, the
// worse the multi-query estimate — but unless lambda' is more than
// about five times lambda, the multi-query estimate still beats the
// single-query estimate ("even somewhat inaccurate information about
// the future is better than no information").

#include <cstdio>

#include "scq_common.h"
#include "sim/report.h"

using namespace mqpi;

int main() {
  bench::Banner(
      "Figures 8-9: SCQ relative error vs misestimated lambda' "
      "(true lambda = 0.03)",
      "multi-query error grows with |lambda' - lambda| but beats the "
      "single-query estimate unless lambda' > ~5x lambda");

  auto fixture = bench::MakeWorkload(
      {.max_rank = 100, .a = 2.2, .n_scale = 1});
  storage::BufferManager scratch;
  engine::Planner probe(&fixture->catalog, &scratch, {.noise_sigma = 0.0});
  const double avg_cost = *fixture->workload->AverageTrueCost(&probe);
  const double rate = 0.07 * avg_cost;
  const int runs = bench::NumRuns();
  const double lambda = 0.03;
  std::printf("c-bar = %.0f U, C = %.1f U/s, true lambda = %.2f, %d runs, "
              "seed=%llu\n\n",
              avg_cost, rate, lambda, runs,
              static_cast<unsigned long long>(bench::BaseSeed()));

  sim::SeriesTable fig8(
      "Figure 8: relative error vs lambda', last-finishing query",
      "lambda_used", {"single_query_err", "multi_query_err"});
  sim::SeriesTable fig9(
      "Figure 9: average relative error vs lambda', all ten queries",
      "lambda_used", {"single_query_err", "multi_query_err"});

  for (double lambda_used :
       {0.0, 0.01, 0.03, 0.05, 0.07, 0.10, 0.15, 0.20}) {
    RunningStats last_single, last_multi, avg_single, avg_multi;
    for (int run = 0; run < runs; ++run) {
      bench::ScqConfig config;
      config.lambda = lambda;
      config.lambda_used = lambda_used;
      config.rate = rate;
      config.seed = bench::BaseSeed() + 6271ull * static_cast<std::uint64_t>(run);
      const auto result = bench::RunScqOnce(fixture.get(), config);
      last_single.Observe(result.last_single_error);
      last_multi.Observe(result.last_multi_error);
      avg_single.Observe(Mean(result.single_errors));
      avg_multi.Observe(Mean(result.multi_errors));
    }
    fig8.AddRow(lambda_used, {last_single.mean(), last_multi.mean()});
    fig9.AddRow(lambda_used, {avg_single.mean(), avg_multi.mean()});
    std::printf("lambda'=%.2f done (last: single %.2f multi %.2f)\n",
                lambda_used, last_single.mean(), last_multi.mean());
  }
  std::printf("\n");
  bench::PrintTable(fig8);
  std::printf("\n");
  bench::PrintTable(fig9);
  return 0;
}
