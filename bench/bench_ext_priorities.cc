// Extension: the MCQ accuracy experiment under mixed priorities.
//
// The paper's prototype could not exercise priorities ("PostgreSQL does
// not support priorities for queries. Hence, all the queries Q_i have
// the same priority"). Our substrate implements the weighted model of
// Assumption 3, so the experiment the paper *wanted* to run is
// possible: ten Zipf(1.2) queries with priorities drawn uniformly from
// {low, normal, high, critical} (weights 1/2/4/8).
//
// Expectation: the multi-query PI models the weights explicitly and
// keeps its accuracy; the single-query PI — which only feels priorities
// through the observed speed — degrades further, because departures now
// change speeds by weight-dependent (not just count-dependent) factors.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "pi/multi_query_pi.h"
#include "sim/report.h"
#include "sim/runner.h"

using namespace mqpi;

namespace {

struct Errors {
  double single = 0.0;
  double multi = 0.0;
};

Errors RunOnce(bench::WorkloadFixture* fixture, bool mixed_priorities,
               std::uint64_t seed) {
  Rng rng(seed);
  storage::BufferManager scratch;
  engine::Planner probe(&fixture->catalog, &scratch, {.noise_sigma = 0.0});

  sched::RdbmsOptions options;
  options.processing_rate = 150.0;
  options.quantum = 0.25;
  options.cost_model.noise_sigma = 0.15;
  options.cost_model.noise_seed = rng.Next();
  sched::Rdbms db(&fixture->catalog, options);
  sim::SimulationRunner runner(&db);
  pi::MultiQueryPi multi(&db, {.rate_window = 2.0});

  std::vector<QueryId> ids;
  std::vector<double> start_work;
  for (int i = 0; i < 10; ++i) {
    const int rank = fixture->workload->SampleRank(&rng);
    const double cost = *fixture->workload->TrueCostOfRank(&probe, rank);
    const Priority priority =
        mixed_priorities ? static_cast<Priority>(rng.UniformInt(0, 3))
                         : Priority::kNormal;
    auto id = runner.SubmitNow(fixture->workload->SpecForRank(rank),
                               priority);
    db.FastForward(*id, rng.Uniform(0.0, 0.9) * cost);
    ids.push_back(*id);
    start_work.push_back(db.info(*id)->completed_work);
  }

  const double warm = 4.0;
  for (int i = 0; i < 16; ++i) {
    runner.StepFor(0.25);
    multi.ObserveStep();
  }
  const SimTime estimate_time = db.now();
  double delivered = 0.0;
  int running_count = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto info = *db.info(ids[i]);
    delivered += info.completed_work - start_work[i];
    if (info.state == sched::QueryState::kRunning) ++running_count;
  }
  std::vector<double> single_est, multi_est;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto info = *db.info(ids[i]);
    if (info.state == sched::QueryState::kFinished) {
      single_est.push_back(0.0);
      multi_est.push_back(0.0);
      continue;
    }
    double speed = (info.completed_work - start_work[i]) / warm;
    if (speed <= 0.0 && running_count > 0) {
      // Fair-share fallback scaled by this query's weight share.
      double total_weight = 0.0;
      for (const auto& other : db.RunningQueries()) {
        total_weight += other.weight;
      }
      speed = delivered / warm * info.weight / total_weight;
    }
    single_est.push_back(
        speed > 0.0 ? info.estimated_remaining_cost / speed : kInfiniteTime);
    auto m = multi.EstimateRemainingTime(ids[i]);
    multi_est.push_back(m.ok() ? *m : kInfiniteTime);
  }
  runner.RunUntilFinished(ids);

  Errors errors;
  int counted = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const double actual = db.info(ids[i])->finish_time - estimate_time;
    if (actual <= 0.0) continue;
    errors.single += RelativeError(single_est[i], actual);
    errors.multi += RelativeError(multi_est[i], actual);
    ++counted;
  }
  if (counted > 0) {
    errors.single /= counted;
    errors.multi /= counted;
  }
  return errors;
}

}  // namespace

int main() {
  bench::Banner(
      "Extension: MCQ accuracy with mixed priorities (weights 1/2/4/8)",
      "multi-query PI models weights and stays accurate; single-query "
      "PI degrades further than in the equal-priority case");

  auto fixture = bench::MakeWorkload(
      {.max_rank = 10, .a = 1.2, .n_scale = 15});
  const int runs = bench::NumRuns(30);

  sim::SeriesTable table(
      "Average relative error of time-0 estimates", "mixed_priorities",
      {"single_query_err", "multi_query_err"});
  for (int mixed = 0; mixed <= 1; ++mixed) {
    RunningStats single, multi;
    for (int run = 0; run < runs; ++run) {
      const auto errors =
          RunOnce(fixture.get(), mixed != 0,
                  bench::BaseSeed() + 1777ull * static_cast<std::uint64_t>(run));
      single.Observe(errors.single);
      multi.Observe(errors.multi);
    }
    table.AddRow(mixed, {single.mean(), multi.mean()});
    std::printf("%s priorities: single %.3f  multi %.3f\n",
                mixed ? "mixed" : "equal", single.mean(), multi.mean());
  }
  std::printf("\n");
  bench::PrintTable(table);
  return 0;
}
