// Extension: "We repeated our experiments with other kinds of queries.
// The results were similar" (paper Section 5.1).
//
// The MCQ-style accuracy comparison is repeated for three query
// classes — the paper's correlated-sub-query template, a hash-join
// aggregate, and a plain scan aggregate — and for a mixed bag of all
// three. For each class we report the average relative error of the
// time-0 estimates over MQPI_RUNS runs. The multi-query PI should beat
// the single-query PI for every class, confirming the paper's claim on
// our substrate.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "pi/multi_query_pi.h"
#include "sim/report.h"
#include "sim/runner.h"

using namespace mqpi;

namespace {

using SpecMaker = std::function<engine::QuerySpec(Rng*)>;

struct MixResult {
  double single_err = 0.0;
  double multi_err = 0.0;
};

MixResult RunOnce(bench::WorkloadFixture* fixture, const SpecMaker& maker,
                  std::uint64_t seed) {
  Rng rng(seed);
  storage::BufferManager scratch;
  engine::Planner probe(&fixture->catalog, &scratch, {.noise_sigma = 0.0});

  sched::RdbmsOptions options;
  options.processing_rate = 200.0;
  options.quantum = 0.25;
  options.cost_model.noise_sigma = 0.15;
  options.cost_model.noise_seed = rng.Next();
  sched::Rdbms db(&fixture->catalog, options);
  sim::SimulationRunner runner(&db);
  pi::MultiQueryPi multi(&db, {.rate_window = 2.0});

  std::vector<QueryId> ids;
  std::vector<double> start_work;
  for (int i = 0; i < 8; ++i) {
    const engine::QuerySpec spec = maker(&rng);
    auto id = runner.SubmitNow(spec);
    if (!id.ok()) continue;
    const auto cost = probe.MeasureTrueCost(spec);
    if (cost.ok()) {
      db.FastForward(*id, rng.Uniform(0.0, 0.7) * *cost);
    }
    ids.push_back(*id);
    start_work.push_back(db.info(*id)->completed_work);
  }

  const double warm = 6.0;
  for (int i = 0; i < 24; ++i) {
    runner.StepFor(0.25);
    multi.ObserveStep();
  }
  const SimTime estimate_time = db.now();
  double delivered = 0.0;
  int running_count = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto info = *db.info(ids[i]);
    delivered += info.completed_work - start_work[i];
    if (info.state == sched::QueryState::kRunning) ++running_count;
  }
  const double fair_share =
      running_count > 0 ? delivered / warm / running_count : 0.0;

  std::vector<double> single_est, multi_est;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto info = *db.info(ids[i]);
    if (info.state == sched::QueryState::kFinished) {
      single_est.push_back(0.0);
      multi_est.push_back(0.0);
      continue;
    }
    double speed = (info.completed_work - start_work[i]) / warm;
    if (speed <= 0.0) speed = fair_share;
    single_est.push_back(
        speed > 0.0 ? info.estimated_remaining_cost / speed : kInfiniteTime);
    auto m = multi.EstimateRemainingTime(ids[i]);
    multi_est.push_back(m.ok() ? *m : kInfiniteTime);
  }
  runner.RunUntilFinished(ids);

  MixResult result;
  int counted = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const double actual = db.info(ids[i])->finish_time - estimate_time;
    if (actual <= 0.0) continue;
    result.single_err += RelativeError(single_est[i], actual);
    result.multi_err += RelativeError(multi_est[i], actual);
    ++counted;
  }
  if (counted > 0) {
    result.single_err /= counted;
    result.multi_err /= counted;
  }
  return result;
}

}  // namespace

int main() {
  bench::Banner(
      "Extension: PI accuracy across query classes (paper: 'We repeated "
      "our experiments with other kinds of queries')",
      "multi-query error below single-query error for every class");

  auto fixture = bench::MakeWorkload(
      {.max_rank = 8, .a = 1.3, .n_scale = 8});
  auto* workload = fixture->workload.get();

  const SpecMaker correlated = [workload](Rng* rng) {
    return workload->SampleSpec(rng);
  };
  const SpecMaker join = [workload](Rng* rng) {
    return engine::QuerySpec::JoinAggregate(
        storage::TpcrGenerator::PartTableName(workload->SampleRank(rng)),
        engine::AggFunc::kSum, "extendedprice");
  };
  const SpecMaker scan = [](Rng* rng) {
    return engine::QuerySpec::ScanAggregate("lineitem",
                                            engine::AggFunc::kAvg,
                                            "extendedprice")
        .WithFilter("quantity", rng->Uniform(5.0, 45.0));
  };
  const SpecMaker group_by = [](Rng* rng) {
    return engine::QuerySpec::GroupByAggregate(
        "lineitem", rng->NextDouble() < 0.5 ? "suppkey" : "partkey",
        engine::AggFunc::kSum, "quantity");
  };
  const SpecMaker top_n = [](Rng* rng) {
    return engine::QuerySpec::TopN(
        "lineitem", "extendedprice", true,
        static_cast<std::size_t>(rng->UniformInt(5, 50)));
  };
  const SpecMaker mixed = [&, workload](Rng* rng) -> engine::QuerySpec {
    switch (rng->UniformInt(0, 4)) {
      case 0:
        return correlated(rng);
      case 1:
        return join(rng);
      case 2:
        return group_by(rng);
      case 3:
        return top_n(rng);
      default:
        return scan(rng);
    }
  };

  struct Class {
    const char* name;
    const SpecMaker* maker;
  };
  const Class classes[] = {{"correlated_subquery", &correlated},
                           {"hash_join_agg", &join},
                           {"scan_agg", &scan},
                           {"group_by_agg", &group_by},
                           {"top_n", &top_n},
                           {"mixed", &mixed}};

  const int runs = bench::NumRuns(30);
  sim::SeriesTable table(
      "Average relative error of time-0 estimates by query class",
      "class_index", {"single_query_err", "multi_query_err"});
  int index = 0;
  for (const Class& c : classes) {
    RunningStats single, multi;
    for (int run = 0; run < runs; ++run) {
      const auto result =
          RunOnce(fixture.get(), *c.maker,
                  bench::BaseSeed() + 4409ull * static_cast<std::uint64_t>(run));
      single.Observe(result.single_err);
      multi.Observe(result.multi_err);
    }
    std::printf("%-22s single %.3f  multi %.3f\n", c.name, single.mean(),
                multi.mean());
    table.AddRow(index++, {single.mean(), multi.mean()});
  }
  std::printf("\n(classes: 0=correlated_subquery, 1=hash_join_agg, "
              "2=scan_agg, 3=group_by_agg, 4=top_n, 5=mixed)\n\n");
  bench::PrintTable(table);
  return 0;
}
