// Figures 1 and 2: the staged execution model.
//
// Figure 1 shows four equal-priority queries executing under fair
// sharing; at the end of stage i query Q_i finishes. Figure 2 shows the
// same four queries with Q3 blocked at time 0: every stage before Q3's
// original slot shortens, and the other queries finish earlier.
//
// These are illustrative diagrams in the paper; we regenerate their
// content as stage timelines computed by StageProfile.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "pi/stage_profile.h"
#include "sim/report.h"
#include "wlm/speedup.h"

using namespace mqpi;

namespace {

void PrintProfile(const char* title, const pi::StageProfile& profile) {
  sim::SeriesTable table(title, "stage",
                         {"finishing_query", "stage_duration_s",
                          "remaining_time_s"});
  for (std::size_t i = 0; i < profile.num_queries(); ++i) {
    table.AddRow(static_cast<double>(i + 1),
                 {static_cast<double>(profile.finish_order()[i].id),
                  profile.stage_durations()[i],
                  profile.remaining_times()[i]});
  }
  table.PrintText();
  std::printf("\n");
}

}  // namespace

int main() {
  bench::Banner(
      "Figures 1-2: staged execution of n=4 queries (standard case and "
      "with Q3 blocked)",
      "4 stages, one query finishing per stage; blocking Q3 shortens "
      "stages 1-3 and every other query finishes earlier");

  // Four equal-priority queries; costs chosen so the finish order is
  // Q1, Q2, Q3, Q4 as in Figure 1. C = 100 U/s.
  const double rate = 100.0;
  std::vector<pi::QueryLoad> loads{
      {1, 100.0, 1.0}, {2, 200.0, 1.0}, {3, 300.0, 1.0}, {4, 400.0, 1.0}};

  auto fig1 = pi::StageProfile::Compute(loads, rate);
  if (!fig1.ok()) {
    std::fprintf(stderr, "%s\n", fig1.status().ToString().c_str());
    return 1;
  }
  PrintProfile("Figure 1: standard case (4 equal-priority queries)", *fig1);

  // Figure 2: block Q3 at time 0.
  std::vector<pi::QueryLoad> blocked{loads[0], loads[1], loads[3]};
  auto fig2 = pi::StageProfile::Compute(blocked, rate);
  PrintProfile("Figure 2: execution with Q3 blocked at time 0", *fig2);

  // Quantify the speed-ups the diagram illustrates.
  sim::SeriesTable speedups(
      "Per-query remaining time: standard vs Q3 blocked", "query",
      {"standard_s", "q3_blocked_s", "time_saved_s"});
  for (QueryId id : {QueryId{1}, QueryId{2}, QueryId{4}}) {
    const double before = *fig1->RemainingTimeOf(id);
    const double after = *fig2->RemainingTimeOf(id);
    speedups.AddRow(static_cast<double>(id), {before, after, before - after});
  }
  speedups.PrintText();

  // Cross-check with the Section 3.1 closed form.
  auto benefit = wlm::SingleQuerySpeedup::ExactBenefit(loads, 4, 3, rate);
  std::printf("\nSection 3.1 closed-form benefit for target Q4, victim Q3: "
              "%.3f s\n",
              benefit.ok() ? *benefit : -1.0);
  return 0;
}
