// Shared helpers for the figure-reproduction benches.
//
// Every bench is a standalone binary that prints (a) the paper's
// expected shape for the experiment and (b) a SeriesTable with the
// regenerated numbers. Environment variables scale effort:
//   MQPI_RUNS     - repetitions for averaged experiments (default 100)
//   MQPI_SEED     - base RNG seed (default 20060326, EDBT 2006 vintage)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/random.h"
#include "sched/rdbms.h"
#include "sim/report.h"
#include "storage/tpcr_gen.h"
#include "workload/zipf_workload.h"

namespace mqpi::bench {

inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value ? std::atoi(value) : fallback;
}

inline std::uint64_t BaseSeed() {
  return static_cast<std::uint64_t>(EnvInt("MQPI_SEED", 20060326));
}

inline int NumRuns(int fallback = 100) {
  return EnvInt("MQPI_RUNS", fallback);
}

/// Owns the generated data plus the workload view over it. Data is
/// built once per process and shared read-only across runs.
struct WorkloadFixture {
  storage::Catalog catalog;
  std::unique_ptr<storage::TpcrGenerator> generator;
  std::unique_ptr<workload::ZipfWorkload> workload;
};

inline std::unique_ptr<WorkloadFixture> MakeWorkload(
    workload::ZipfWorkloadOptions options,
    storage::TpcrConfig tpcr = {.num_part_keys = 5000,
                                .matches_per_key = 30,
                                .seed = 42}) {
  auto fixture = std::make_unique<WorkloadFixture>();
  fixture->generator = std::make_unique<storage::TpcrGenerator>(tpcr);
  fixture->workload = std::make_unique<workload::ZipfWorkload>(
      &fixture->catalog, fixture->generator.get(), options);
  const Status status = fixture->workload->MaterializeTables();
  if (!status.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }
  return fixture;
}

/// Instantaneous single-query PI estimate (t = c / s with the speed
/// observed over the last scheduler quantum), used where no smoothed
/// trace is required.
inline SimTime InstantSingleEstimate(const sched::QueryInfo& info) {
  if (info.last_step_duration <= 0.0 || info.consumed_last_step <= 0.0) {
    return kInfiniteTime;
  }
  const double speed = info.consumed_last_step / info.last_step_duration;
  return info.estimated_remaining_cost / speed;
}

/// Prints the table as text, and additionally as CSV when MQPI_CSV=1
/// (for plotting pipelines).
inline void PrintTable(const sim::SeriesTable& table) {
  table.PrintText();
  if (EnvInt("MQPI_CSV", 0) != 0) {
    std::printf("\n");
    table.PrintCsv();
  }
}

inline void Banner(const char* figure, const char* expectation) {
  std::printf("\n################################################------\n");
  std::printf("# %s\n", figure);
  std::printf("# Paper expectation: %s\n", expectation);
  std::printf("########################################################\n\n");
}

}  // namespace mqpi::bench
