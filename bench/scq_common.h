// Shared driver for the Stream Concurrent Query (SCQ) experiments
// (Section 5.2.3, Figures 6-10).
//
// Setup per run: ten queries with N_i ~ Zipf(a=2.2) are running, each
// at a random point of its execution; new queries arrive as a Poisson
// process with rate lambda, drawn from the same mix. The run proceeds
// until all ten initial queries finish; their actual finish times are
// the ground truth for the estimates taken at time 0.
//
// The multi-query PI is admission-queue aware and uses a future model
// with rate lambda_used (which Figures 8-10 deliberately set != lambda)
// and the workload's exact average cost.
#pragma once

#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "pi/multi_query_pi.h"
#include "sim/runner.h"
#include "workload/arrival_schedule.h"

namespace mqpi::bench {

struct ScqConfig {
  double lambda = 0.0;        // true arrival rate
  double lambda_used = 0.0;   // rate the multi-query PI believes
  std::uint64_t seed = 1;
  /// Aggregate rate C; pick ~0.07 * avg_cost so the paper's stability
  /// knee at lambda ~= 0.07 lands inside the swept range.
  double rate = 55.0;
  int max_concurrent = 10;
  double quantum = 0.5;
  double noise_sigma = 0.25;
};

struct ScqRunResult {
  /// Relative errors of the time-0 estimates, one entry per initial
  /// query. `multi` is the full queue-aware PI; `blind` ignores the
  /// admission queue (closest to the paper's setup, which had no
  /// admission limit and hence no queue to exploit).
  std::vector<double> single_errors;
  std::vector<double> multi_errors;
  std::vector<double> blind_errors;
  double last_single_error = 0.0;
  double last_multi_error = 0.0;
  double last_blind_error = 0.0;
};

/// Runs one SCQ instance. `fixture` must hold a Zipf(2.2) workload.
inline ScqRunResult RunScqOnce(WorkloadFixture* fixture,
                               const ScqConfig& config) {
  Rng rng(config.seed);

  sched::RdbmsOptions options;
  options.processing_rate = config.rate;
  options.max_concurrent = config.max_concurrent;
  options.quantum = config.quantum;
  options.cost_model.noise_sigma = config.noise_sigma;
  options.cost_model.noise_seed = rng.Next();
  sched::Rdbms db(&fixture->catalog, options);
  sim::SimulationRunner runner(&db);

  storage::BufferManager scratch;
  engine::Planner probe(&fixture->catalog, &scratch, {.noise_sigma = 0.0});

  // Ten initial queries at random execution points.
  std::vector<QueryId> initial;
  std::vector<double> true_remaining;
  QueryId last_finisher = kInvalidQueryId;
  double largest_remaining = -1.0;
  for (int i = 0; i < 10; ++i) {
    const int rank = fixture->workload->SampleRank(&rng);
    const double cost = *fixture->workload->TrueCostOfRank(&probe, rank);
    auto id = runner.SubmitNow(fixture->workload->SpecForRank(rank));
    const double fraction = rng.Uniform(0.0, 0.95);
    db.FastForward(*id, fraction * cost);
    initial.push_back(*id);
    true_remaining.push_back(cost * (1.0 - fraction));
    if (true_remaining.back() > largest_remaining) {
      largest_remaining = true_remaining.back();
      last_finisher = *id;
    }
  }

  // Poisson arrivals from the same mix, far beyond any plausible
  // completion horizon for the initial ten.
  const double horizon =
      40.0 * largest_remaining * 10.0 / options.processing_rate + 1000.0;
  for (const auto& arrival : workload::GeneratePoissonArrivals(
           *fixture->workload, config.lambda, horizon, &rng)) {
    runner.ScheduleArrival(arrival.time,
                           fixture->workload->SpecForRank(arrival.rank));
  }

  // Future model: believed rate lambda_used, exact average cost.
  const double avg_cost =
      *fixture->workload->AverageTrueCost(&probe);
  pi::FutureWorkloadModel future({.lambda = config.lambda_used,
                                  .avg_cost = avg_cost,
                                  .avg_weight = options.weights.WeightOf(
                                      Priority::kNormal)});
  pi::MultiQueryPi multi(&db, {.consider_admission_queue = true},
                         &future);
  pi::MultiQueryPi blind(&db, {.consider_admission_queue = false},
                         &future);

  // Warm a short window so speeds and the measured rate exist, then
  // record the "time 0" estimates. Single-query speed is measured over
  // the whole warm window (per-quantum consumption is lumpy at operator
  // granularity). A query whose fair share is below one probe's cost
  // can legitimately show zero progress in the window — a real PI at
  // page granularity would still see its fair share, so fall back to
  // the per-query share of the measured aggregate rate.
  std::vector<double> warm_start_work;
  WorkUnits warm_start_total = 0.0;
  for (QueryId id : initial) {
    const double done = db.info(id)->completed_work;
    warm_start_work.push_back(done);
    warm_start_total += done;
  }
  const int warm_quanta = 24;
  const SimTime warm_span = warm_quanta * options.quantum;
  for (int i = 0; i < warm_quanta; ++i) {
    runner.StepFor(options.quantum);
    multi.ObserveStep();
    blind.ObserveStep();
  }
  const SimTime estimate_time = db.now();
  WorkUnits warm_end_total = 0.0;
  int still_running = 0;
  for (QueryId id : initial) {
    const auto info = *db.info(id);
    warm_end_total += info.completed_work;
    if (info.state == sched::QueryState::kRunning) ++still_running;
  }
  const double fair_share =
      still_running > 0
          ? (warm_end_total - warm_start_total) / warm_span /
                static_cast<double>(db.num_running())
          : 0.0;
  std::vector<double> single_est, multi_est, blind_est;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    const auto info = *db.info(initial[i]);
    if (info.state == sched::QueryState::kFinished) {
      single_est.push_back(0.0);
    } else {
      double speed = (info.completed_work - warm_start_work[i]) / warm_span;
      if (speed <= 0.0) speed = fair_share;
      single_est.push_back(speed > 0.0
                               ? info.estimated_remaining_cost / speed
                               : kInfiniteTime);
    }
    auto m = multi.EstimateRemainingTime(initial[i]);
    multi_est.push_back(m.ok() ? *m : kInfiniteTime);
    auto b = blind.EstimateRemainingTime(initial[i]);
    blind_est.push_back(b.ok() ? *b : kInfiniteTime);
  }

  // Run to ground truth.
  runner.RunUntilFinished(initial);

  ScqRunResult result;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    const double actual =
        db.info(initial[i])->finish_time - estimate_time;
    if (actual <= 0.0) continue;  // finished before the estimate instant
    const double se = RelativeError(single_est[i], actual);
    const double me = RelativeError(multi_est[i], actual);
    const double be = RelativeError(blind_est[i], actual);
    result.single_errors.push_back(se);
    result.multi_errors.push_back(me);
    result.blind_errors.push_back(be);
    if (initial[i] == last_finisher) {
      result.last_single_error = se;
      result.last_multi_error = me;
      result.last_blind_error = be;
    }
  }
  return result;
}

}  // namespace mqpi::bench
