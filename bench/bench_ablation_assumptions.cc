// Section 4 ablation: what happens to estimate accuracy when the
// simplifying assumptions of Section 2.1 are violated.
//
//   Assumption 1 (constant aggregate rate C): violated by a thrashing
//   model — beyond a multiprogramming threshold each extra query costs
//   a fraction of the base rate.
//   Assumption 3 (speed proportional to weight): violated by per-query
//   log-normal interference multipliers.
//
// Paper claim: "while this will hurt the accuracy of the multi-query
// PI, it is still likely to be superior to that of a single-query PI,
// which pays no attention whatsoever to other queries."
//
// Setup: MCQ-style (ten Zipf(1.2) queries, no arrivals); we record the
// relative error of the time-0 estimates for all queries and average
// over runs, sweeping each perturbation's strength.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "pi/multi_query_pi.h"
#include "sim/report.h"
#include "sim/runner.h"

using namespace mqpi;

namespace {

struct AblationResult {
  double single_err = 0.0;
  double multi_err = 0.0;
};

AblationResult RunOnce(bench::WorkloadFixture* fixture,
                       const sched::PerturbationOptions& perturbation,
                       std::uint64_t seed,
                       const storage::BufferOptions* buffer = nullptr) {
  Rng rng(seed);
  storage::BufferManager scratch;
  engine::Planner probe(&fixture->catalog, &scratch, {.noise_sigma = 0.0});

  sched::RdbmsOptions options;
  options.processing_rate = 150.0;
  options.quantum = 0.25;
  options.cost_model.noise_sigma = 0.15;
  options.cost_model.noise_seed = rng.Next();
  options.perturbation = perturbation;
  options.perturbation.seed = rng.Next();
  if (buffer != nullptr) options.buffer = *buffer;
  sched::Rdbms db(&fixture->catalog, options);
  sim::SimulationRunner runner(&db);
  pi::MultiQueryPi multi(&db, {.rate_window = 2.0});

  std::vector<QueryId> ids;
  std::vector<double> start_work;
  for (int i = 0; i < 10; ++i) {
    const int rank = fixture->workload->SampleRank(&rng);
    const double cost = *fixture->workload->TrueCostOfRank(&probe, rank);
    auto id = runner.SubmitNow(fixture->workload->SpecForRank(rank));
    db.FastForward(*id, rng.Uniform(0.0, 0.9) * cost);
    ids.push_back(*id);
    start_work.push_back(db.info(*id)->completed_work);
  }

  // Warm a window so the PIs can measure speeds/rate, then estimate.
  const double warm = 4.0;
  for (int i = 0; i < 16; ++i) {
    runner.StepFor(0.25);
    multi.ObserveStep();
  }
  const SimTime estimate_time = db.now();
  // Fair-share fallback for queries whose (perturbed) share is below
  // one probe cost and thus show zero progress in the warm window; a
  // page-granular PI would still observe its share.
  double delivered = 0.0;
  int running_count = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto info = *db.info(ids[i]);
    delivered += info.completed_work - start_work[i];
    if (info.state == sched::QueryState::kRunning) ++running_count;
  }
  const double fair_share =
      running_count > 0 ? delivered / warm / running_count : 0.0;
  std::vector<double> single_est, multi_est;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto info = *db.info(ids[i]);
    if (info.state == sched::QueryState::kFinished) {
      single_est.push_back(0.0);
      multi_est.push_back(0.0);
      continue;
    }
    double speed = (info.completed_work - start_work[i]) / warm;
    if (speed <= 0.0) speed = fair_share;
    single_est.push_back(
        speed > 0.0 ? info.estimated_remaining_cost / speed : kInfiniteTime);
    auto m = multi.EstimateRemainingTime(ids[i]);
    multi_est.push_back(m.ok() ? *m : kInfiniteTime);
  }
  runner.RunUntilFinished(ids);

  AblationResult result;
  int counted = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const double actual = db.info(ids[i])->finish_time - estimate_time;
    if (actual <= 0.0) continue;
    result.single_err += RelativeError(single_est[i], actual);
    result.multi_err += RelativeError(multi_est[i], actual);
    ++counted;
  }
  if (counted > 0) {
    result.single_err /= counted;
    result.multi_err /= counted;
  }
  return result;
}

void Sweep(bench::WorkloadFixture* fixture, const char* title,
           const std::vector<double>& xs,
           const std::function<sched::PerturbationOptions(double)>& make) {
  sim::SeriesTable table(title, "strength",
                         {"single_query_err", "multi_query_err"});
  const int runs = bench::NumRuns(30);
  for (double x : xs) {
    RunningStats single, multi;
    for (int run = 0; run < runs; ++run) {
      const auto result =
          RunOnce(fixture, make(x),
                  bench::BaseSeed() + 31337ull * static_cast<std::uint64_t>(run));
      single.Observe(result.single_err);
      multi.Observe(result.multi_err);
    }
    table.AddRow(x, {single.mean(), multi.mean()});
  }
  table.PrintText();
  std::printf("\n");
}

}  // namespace

int main() {
  bench::Banner(
      "Section 4 ablation: estimate error under assumption violations",
      "multi-query error grows with perturbation strength but stays "
      "below the single-query error");

  auto fixture = bench::MakeWorkload(
      {.max_rank = 10, .a = 1.2, .n_scale = 15});

  Sweep(fixture.get(),
        "Assumption 1 violated: thrashing factor (rate loss per query "
        "beyond MPL 4)",
        {0.0, 0.02, 0.05, 0.10, 0.15}, [](double f) {
          sched::PerturbationOptions p;
          p.thrash_threshold = 4;
          p.thrash_factor = f;
          return p;
        });

  Sweep(fixture.get(),
        "Assumption 3 violated: per-query speed jitter sigma",
        {0.0, 0.1, 0.25, 0.5, 0.75}, [](double sigma) {
          sched::PerturbationOptions p;
          p.speed_jitter_sigma = sigma;
          return p;
        });

  // Buffer-pool contention (Section 4.2's "two queries compete
  // for/share buffer pool pages"): shrink the shared pool and make a
  // fault cost extra work units, so per-query costs become
  // load-dependent and Assumption 2's known-cost premise erodes.
  {
    sim::SeriesTable table(
        "Buffer contention: shared pool pages (miss surcharge 2x)",
        "pool_pages", {"single_query_err", "multi_query_err"});
    const int runs = bench::NumRuns(30);
    for (std::size_t pool : {8192ul, 2048ul, 512ul, 128ul}) {
      storage::BufferOptions buffer;
      buffer.capacity_pages = pool;
      buffer.cost_per_miss = 2.0;
      RunningStats single, multi;
      for (int run = 0; run < runs; ++run) {
        const auto result = RunOnce(
            fixture.get(), sched::PerturbationOptions{},
            bench::BaseSeed() + 7211ull * static_cast<std::uint64_t>(run),
            &buffer);
        single.Observe(result.single_err);
        multi.Observe(result.multi_err);
      }
      table.AddRow(static_cast<double>(pool), {single.mean(), multi.mean()});
    }
    table.PrintText();
  }
  return 0;
}
