// Figures 6 and 7: the Stream Concurrent Query (SCQ) experiment
// (Section 5.2.3) with exact knowledge of lambda and c-bar.
//
// Ten Zipf(2.2) queries run at time 0; new queries arrive at Poisson
// rate lambda. For each lambda the relative error of the time-0
// estimates is averaged over MQPI_RUNS runs:
//   Figure 6 - error for the last-finishing query,
//   Figure 7 - average error over all ten queries.
//
// Paper shape: multi-query error < single-query error everywhere in the
// stable region; single-query error falls as lambda grows while
// multi-query error rises; past the stability knee (lambda ~0.07 with
// the paper's calibration) both are large and comparable.

#include <cstdio>

#include "scq_common.h"
#include "sim/report.h"

using namespace mqpi;

int main() {
  bench::Banner(
      "Figures 6-7: SCQ relative error vs lambda (exact lambda, c-bar)",
      "multi < single for all stable lambda; single falls / multi rises "
      "with lambda; comparable beyond the stability knee (~0.07)");

  auto fixture = bench::MakeWorkload(
      {.max_rank = 100, .a = 2.2, .n_scale = 1});

  // Calibrate C so saturation lands at lambda ~0.07 as in the paper.
  storage::BufferManager scratch;
  engine::Planner probe(&fixture->catalog, &scratch, {.noise_sigma = 0.0});
  const double avg_cost = *fixture->workload->AverageTrueCost(&probe);
  const double rate = 0.07 * avg_cost;
  const int runs = bench::NumRuns();
  std::printf("avg query cost c-bar = %.0f U, calibrated C = %.1f U/s, "
              "%d runs per lambda, seed=%llu\n\n",
              avg_cost, rate, runs,
              static_cast<unsigned long long>(bench::BaseSeed()));

  sim::SeriesTable fig6(
      "Figure 6: relative error, last-finishing query", "lambda",
      {"single_query_err", "multi_query_err", "multi_queue_blind_err"});
  sim::SeriesTable fig7(
      "Figure 7: average relative error, all ten queries", "lambda",
      {"single_query_err", "multi_query_err", "multi_queue_blind_err"});

  for (double lambda : {0.0, 0.01, 0.03, 0.05, 0.07, 0.10, 0.15, 0.20}) {
    RunningStats last_single, last_multi, last_blind;
    RunningStats avg_single, avg_multi, avg_blind;
    for (int run = 0; run < runs; ++run) {
      bench::ScqConfig config;
      config.lambda = lambda;
      config.lambda_used = lambda;  // exact knowledge
      config.rate = rate;
      config.seed = bench::BaseSeed() + 7919ull * static_cast<std::uint64_t>(run);
      const auto result = bench::RunScqOnce(fixture.get(), config);
      last_single.Observe(result.last_single_error);
      last_multi.Observe(result.last_multi_error);
      last_blind.Observe(result.last_blind_error);
      avg_single.Observe(Mean(result.single_errors));
      avg_multi.Observe(Mean(result.multi_errors));
      avg_blind.Observe(Mean(result.blind_errors));
    }
    fig6.AddRow(lambda,
                {last_single.mean(), last_multi.mean(), last_blind.mean()});
    fig7.AddRow(lambda,
                {avg_single.mean(), avg_multi.mean(), avg_blind.mean()});
    std::printf("lambda=%.2f done (last: single %.2f multi %.2f blind %.2f)\n",
                lambda, last_single.mean(), last_multi.mean(),
                last_blind.mean());
  }
  std::printf("\n");
  bench::PrintTable(fig6);
  std::printf("\n");
  bench::PrintTable(fig7);
  return 0;
}
