// Snapshot fan-out benchmark: one ticker publishing progress snapshots
// to massive in-process subscriber populations through the net layer's
// SnapshotFanout + SubscriberPool (the same machinery TCP subscribers
// ride, minus the sockets).
//
// What it demonstrates, per the O(1)-publish design in net/fanout.h:
//   - the publishing (ticker) thread does ZERO per-subscriber work: a
//     publish costs one pointer swap plus one signal per registered
//     waker, measured by fanout counters (publish_ops / publishes), so
//     ticker throughput is flat from 1k to 100k subscribers;
//   - per-subscriber delta encoding and queueing happens on the pool
//     workers, and publish->pop latency stays bounded (p50/p99
//     reported at every scale).
//
// Modes:
//   bench_net_fanout              full sweep at 1k / 10k / 100k
//                                 subscribers; writes
//                                 BENCH_net_fanout.json
//   bench_net_fanout --perfsmoke  fast CI assertion (ctest label
//                                 "perfsmoke"): ops-per-publish must be
//                                 byte-identical at 64 and 2048
//                                 subscribers — counter-based, no
//                                 wall-clock thresholds, cannot flake
//                                 on slow machines — and p99 latency
//                                 is computed and reported.
//
// MQPI_NET_SUBS caps the largest scale (default 100000).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/planner.h"
#include "net/client.h"
#include "net/fanout.h"
#include "net/server.h"
#include "service/pi_service.h"
#include "service/session.h"
#include "storage/catalog.h"

using namespace mqpi;

namespace {

constexpr int kQueries = 6;
constexpr int kConsumerThreads = 4;

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ScaleResult {
  int subscribers = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double ticker_quanta_per_sec = 0.0;
  /// Fan-out work on the publishing thread per publish (fanout
  /// counters): 1 swap + 1 signal per waker, independent of the
  /// subscriber count.
  double ops_per_publish = 0.0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t sheds = 0;
};

double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0.0;
  const auto k = static_cast<std::size_t>(
      p * static_cast<double>(samples->size() - 1));
  std::nth_element(samples->begin(), samples->begin() + k, samples->end());
  return (*samples)[k];
}

/// Pumps every subscriber in [begin, end) until its view reaches
/// `target`, appending publish->pop latency samples (us).
void PumpSlice(std::vector<net::LocalSubscriber>* subs, std::size_t begin,
               std::size_t end, std::uint64_t target,
               net::SnapshotFanout* fanout, std::vector<double>* latencies) {
  std::vector<std::uint64_t> sequences;
  for (;;) {
    std::size_t done = 0;
    for (std::size_t i = begin; i < end; ++i) {
      auto& sub = (*subs)[i];
      if (sub.view().sequence() >= target) {
        ++done;
        continue;
      }
      sequences.clear();
      sub.Pump(&sequences);
      const std::int64_t now = NowNs();
      for (const std::uint64_t seq : sequences) {
        const std::int64_t stamp = fanout->PublishWallNs(seq);
        if (stamp > 0 && now > stamp) {
          latencies->push_back(static_cast<double>(now - stamp) * 1e-3);
        }
      }
      if (sub.view().sequence() >= target) ++done;
    }
    if (done == end - begin) return;
    std::this_thread::yield();
  }
}

ScaleResult RunScale(int subscribers, int paced_rounds, int burst_quanta) {
  storage::Catalog catalog;
  service::PiServiceOptions options;
  options.rdbms.processing_rate = 100.0;
  options.rdbms.quantum = 0.1;
  options.rdbms.cost_model.noise_sigma = 0.0;
  options.start_ticker = false;
  service::PiService service(&catalog, options);

  net::PiServerOptions server_options;
  server_options.pool_threads = 4;
  // The burst phase publishes without consumer pumping in between;
  // generous queue bounds keep coalescing (not shedding) the pressure
  // valve.
  server_options.subscription.max_queued_frames = 4096;
  server_options.subscription.max_queued_bytes = std::size_t{64} << 20;
  net::PiServer server(&service, server_options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    std::exit(1);
  }

  auto session = service.OpenSession("fanout-load");
  for (int i = 0; i < kQueries; ++i) {
    // Never finishes within the bench: every tick changes every row,
    // so each paced publish produces a real (all-rows) delta.
    (void)session->Submit(engine::QuerySpec::Synthetic(1e9));
  }
  service.PublishNow();

  std::vector<net::LocalSubscriber> subs;
  subs.reserve(static_cast<std::size_t>(subscribers));
  for (int i = 0; i < subscribers; ++i) {
    subs.emplace_back(server.pool()->Subscribe());
  }

  ScaleResult result;
  result.subscribers = subscribers;

  // ---- paced phase: publish, then fan in the latency samples ----------------
  std::vector<std::vector<double>> thread_latencies(kConsumerThreads);
  const std::size_t slice =
      (subs.size() + kConsumerThreads - 1) / kConsumerThreads;
  for (int round = 0; round < paced_rounds; ++round) {
    const Status status = service.Advance(options.rdbms.quantum);
    if (!status.ok()) {
      std::fprintf(stderr, "advance failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
    const std::uint64_t target = service.snapshot()->sequence;
    std::vector<std::thread> consumers;
    for (int t = 0; t < kConsumerThreads; ++t) {
      const std::size_t begin = std::min(subs.size(), t * slice);
      const std::size_t end = std::min(subs.size(), begin + slice);
      if (begin == end) continue;
      consumers.emplace_back(PumpSlice, &subs, begin, end, target,
                             server.fanout(), &thread_latencies[t]);
    }
    for (auto& consumer : consumers) consumer.join();
  }
  std::vector<double> latencies;
  for (auto& part : thread_latencies) {
    latencies.insert(latencies.end(), part.begin(), part.end());
  }
  result.p50_us = Percentile(&latencies, 0.50);
  result.p99_us = Percentile(&latencies, 0.99);

  // ---- burst phase: ticker throughput with zero consumer pumping ------------
  const std::int64_t t0 = NowNs();
  for (int i = 0; i < burst_quanta; ++i) {
    (void)service.Advance(options.rdbms.quantum);
  }
  const std::int64_t t1 = NowNs();
  result.ticker_quanta_per_sec =
      static_cast<double>(burst_quanta) /
      (static_cast<double>(t1 - t0) * 1e-9);

  // Drain so teardown never races a mid-sweep delivery.
  {
    const std::uint64_t target = service.snapshot()->sequence;
    std::vector<std::thread> consumers;
    std::vector<double> sink;
    for (int t = 0; t < kConsumerThreads; ++t) {
      const std::size_t begin = std::min(subs.size(), t * slice);
      const std::size_t end = std::min(subs.size(), begin + slice);
      if (begin == end) continue;
      consumers.emplace_back(PumpSlice, &subs, begin, end, target,
                             server.fanout(), &thread_latencies[t]);
    }
    for (auto& consumer : consumers) consumer.join();
  }

  result.ops_per_publish =
      static_cast<double>(server.fanout()->publish_ops()) /
      static_cast<double>(server.fanout()->publishes());
  result.frames_delivered = server.metrics()->frames_sent->value();
  result.sheds = server.metrics()->slow_consumers_shed->value();

  session->Close();
  server.Stop();
  return result;
}

int Perfsmoke() {
  const ScaleResult small = RunScale(64, 3, 10);
  const ScaleResult large = RunScale(2048, 3, 10);
  bool ok = true;
  // The O(1)-publish invariant, counter-based: fan-out work on the
  // publishing thread per publish must be EXACTLY the same with 32x
  // the subscribers.
  if (small.ops_per_publish != large.ops_per_publish) {
    std::fprintf(stderr,
                 "perfsmoke FAIL: %.3f fan-out ops/publish at %d "
                 "subscribers vs %.3f at %d — publish must do zero "
                 "per-subscriber work\n",
                 small.ops_per_publish, small.subscribers,
                 large.ops_per_publish, large.subscribers);
    ok = false;
  }
  if (small.sheds != 0 || large.sheds != 0) {
    std::fprintf(stderr, "perfsmoke FAIL: subscribers were shed\n");
    ok = false;
  }
  if (large.p99_us <= 0.0) {
    std::fprintf(stderr, "perfsmoke FAIL: no p99 latency measured\n");
    ok = false;
  }
  if (!ok) return 1;
  std::printf(
      "perfsmoke OK: %.3f fan-out ops/publish at both %d and %d "
      "subscribers; p99 publish->pop %.0f us at %d subs\n",
      large.ops_per_publish, small.subscribers, large.subscribers,
      large.p99_us, large.subscribers);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--perfsmoke") == 0) {
    return Perfsmoke();
  }

  bench::Banner(
      "Snapshot fan-out: publish->pop latency and ticker throughput vs "
      "subscriber count",
      "publish cost is O(1) in subscribers (pointer swap + per-pool "
      "signal), so ticker quanta/sec stays flat while p50/p99 delivery "
      "latency grows only with per-subscriber encode work on the pool");

  const int max_subs = bench::EnvInt("MQPI_NET_SUBS", 100000);
  std::vector<int> scales;
  for (const int scale : {1000, 10000, 100000}) {
    if (scale <= max_subs) scales.push_back(scale);
  }
  if (scales.empty()) scales.push_back(max_subs);

  std::FILE* json = std::fopen("BENCH_net_fanout.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_net_fanout.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"net_fanout\",\n"
                     "  \"unit\": \"us\",\n  \"results\": [\n");

  std::printf("%10s %10s %10s %16s %14s %12s\n", "subs", "p50 us", "p99 us",
              "ticker quanta/s", "ops/publish", "frames");
  bool ok = true;
  double first_ops = 0.0;
  for (std::size_t s = 0; s < scales.size(); ++s) {
    const int subscribers = scales[s];
    const int paced = subscribers >= 100000 ? 5 : 10;
    const ScaleResult r = RunScale(subscribers, paced, 50);
    std::printf("%10d %10.1f %10.1f %16.0f %14.3f %12llu\n", r.subscribers,
                r.p50_us, r.p99_us, r.ticker_quanta_per_sec,
                r.ops_per_publish,
                static_cast<unsigned long long>(r.frames_delivered));
    std::fprintf(json,
                 "    {\"subscribers\": %d, \"p50_us\": %.1f, "
                 "\"p99_us\": %.1f, \"ticker_quanta_per_sec\": %.0f, "
                 "\"ops_per_publish\": %.3f, \"frames\": %llu}%s\n",
                 r.subscribers, r.p50_us, r.p99_us, r.ticker_quanta_per_sec,
                 r.ops_per_publish,
                 static_cast<unsigned long long>(r.frames_delivered),
                 s + 1 < scales.size() ? "," : "");
    if (s == 0) {
      first_ops = r.ops_per_publish;
    } else if (r.ops_per_publish != first_ops) {
      std::fprintf(stderr,
                   "FAIL: fan-out ops/publish moved from %.3f to %.3f "
                   "between scales — publish must be O(1) in "
                   "subscribers\n",
                   first_ops, r.ops_per_publish);
      ok = false;
    }
    if (r.sheds != 0) {
      std::fprintf(stderr, "FAIL: %llu subscribers shed at %d subs\n",
                   static_cast<unsigned long long>(r.sheds), r.subscribers);
      ok = false;
    }
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  if (!ok) return 1;
  std::printf("\nresults written to BENCH_net_fanout.json\n");
  return 0;
}
