// Figures 3 and 4: the Multiple Concurrent Query (MCQ) experiment
// (Section 5.2.1).
//
// Ten queries Q_i with N_i ~ Zipf(a=1.2) run concurrently; at time 0
// each is at a random point of its execution, and no new queries
// arrive. For a typical large query Q:
//   Figure 3 - remaining execution time estimated over time by the
//              single-query and multi-query PIs vs the actual value;
//   Figure 4 - the execution speed of Q monitored over time.
//
// Paper shape: the multi-query estimate hugs the actual line; the
// single-query estimate starts ~3x too high; Q's speed rises by almost
// a factor of five as the other queries finish.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "pi/pi_manager.h"
#include "sim/report.h"
#include "sim/runner.h"

using namespace mqpi;

int main() {
  bench::Banner(
      "Figures 3-4: MCQ experiment (10 Zipf(1.2) queries, no arrivals)",
      "multi-query estimate tracks the actual remaining time; "
      "single-query estimate ~3x too high at the start; speed rises ~5x");

  auto fixture = bench::MakeWorkload(
      {.max_rank = 10, .a = 1.2, .n_scale = 15});
  Rng rng(bench::BaseSeed());

  // Sample the ten queries and measure their exact costs (used only
  // for calibration and the actual-remaining-time line).
  storage::BufferManager scratch;
  engine::Planner probe(&fixture->catalog, &scratch, {.noise_sigma = 0.0});
  std::vector<int> ranks;
  std::vector<double> costs;
  double total_work = 0.0;
  for (int i = 0; i < 10; ++i) {
    const int rank = fixture->workload->SampleRank(&rng);
    ranks.push_back(rank);
    const double cost =
        *fixture->workload->TrueCostOfRank(&probe, rank);
    costs.push_back(cost);
    total_work += cost;
  }
  // Random execution points at time 0 (fractions drawn up front so the
  // calibration below can account for them).
  std::vector<double> done_fraction;
  double remaining_work = 0.0;
  for (int i = 0; i < 10; ++i) {
    done_fraction.push_back(rng.Uniform(0.0, 0.9));
    remaining_work += costs[static_cast<std::size_t>(i)] *
                      (1.0 - done_fraction[static_cast<std::size_t>(i)]);
  }

  // Calibrate C so the experiment spans ~450 simulated seconds, the
  // paper's x-axis.
  sched::RdbmsOptions options;
  options.processing_rate = remaining_work / 450.0;
  options.quantum = 0.25;
  options.cost_model.noise_sigma = 0.15;
  sched::Rdbms db(&fixture->catalog, options);

  pi::PiManager pis(&db, {.sample_interval = 10.0});
  sim::SimulationRunner runner(&db, &pis);

  std::vector<QueryId> ids;
  for (int i = 0; i < 10; ++i) {
    auto id = runner.SubmitNow(
        fixture->workload->SpecForRank(ranks[static_cast<std::size_t>(i)]));
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return 1;
    }
    db.FastForward(*id, done_fraction[static_cast<std::size_t>(i)] *
                            costs[static_cast<std::size_t>(i)]);
    ids.push_back(*id);
  }

  // "We focus on a typical large query Q": the one with the largest
  // remaining work at time 0.
  QueryId q = ids[0];
  double largest_remaining = -1.0;
  for (int i = 0; i < 10; ++i) {
    const double rem = costs[static_cast<std::size_t>(i)] *
                       (1.0 - done_fraction[static_cast<std::size_t>(i)]);
    if (rem > largest_remaining) {
      largest_remaining = rem;
      q = ids[static_cast<std::size_t>(i)];
    }
  }
  pis.Track(q);

  runner.RunUntilFinished({q});
  const SimTime finish = db.info(q)->finish_time;

  sim::SeriesTable fig3(
      "Figure 3: remaining execution time estimated over time for Q",
      "time_s", {"actual_s", "single_query_est_s", "multi_query_est_s"});
  sim::SeriesTable fig4("Figure 4: query execution speed monitored for Q",
                        "time_s", {"speed_U_per_s"});
  double first_single = kUnknown, first_actual = kUnknown;
  double min_speed = 1e18, max_speed = 0.0;
  for (const auto& sample : pis.Trace(q)) {
    const double actual = finish - sample.time;
    fig3.AddRow(sample.time, {actual, sample.single, sample.multi});
    fig4.AddRow(sample.time, {sample.speed});
    if (first_single == kUnknown && sample.single != kUnknown &&
        sample.single < kInfiniteTime) {
      first_single = sample.single;
      first_actual = actual;
    }
    if (sample.speed > 0.0) {
      min_speed = std::min(min_speed, sample.speed);
      max_speed = std::max(max_speed, sample.speed);
    }
  }
  bench::PrintTable(fig3);
  std::printf("\n");
  bench::PrintTable(fig4);

  std::printf("\nSummary: Q finished at %.1f s; initial single-query "
              "overestimate factor %.2fx (paper: ~3x); speed rose %.2fx "
              "from %.1f to %.1f U/s (paper: ~5x)\n",
              finish, first_single / first_actual, max_speed / min_speed,
              min_speed, max_speed);
  std::printf("seed=%llu C=%.1f U/s\n",
              static_cast<unsigned long long>(bench::BaseSeed()),
              options.processing_rate);
  return 0;
}
