// Extension: the Section 3.1 decision ladder — raise the target's
// priority first; block victims only when the target is already at the
// highest priority.
//
// For a fixed scenario this bench sweeps the two controls and compares
// the target's predicted and actual finish times:
//   * raising the target to each priority level, and
//   * blocking h = 1..3 optimal victims at the highest priority.
// The predicted savings come from StageProfile (priority changes) and
// from the Section 3.1 closed form (blocking); actuals come from
// running the scheduler. Prediction error should stay within a couple
// of scheduling quanta.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/report.h"
#include "wlm/wlm_advisor.h"

using namespace mqpi;

namespace {

struct Outcome {
  double predicted_finish = 0.0;
  double actual_finish = 0.0;
};

sched::RdbmsOptions Options() {
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.05;
  options.cost_model.noise_sigma = 0.0;
  options.weights = PriorityWeights(1.0, 2.0, 4.0, 8.0);
  return options;
}

/// Five queries; the target is #0 at kLow. Applies `action` right after
/// submission, then runs to completion.
template <typename Action>
Outcome Run(const storage::Catalog* catalog, Action action) {
  sched::Rdbms db(catalog, Options());
  std::vector<QueryId> ids;
  for (double cost : {500.0, 400.0, 600.0, 300.0, 700.0}) {
    ids.push_back(*db.Submit(engine::QuerySpec::Synthetic(cost),
                             Priority::kLow));
  }
  Outcome outcome;
  outcome.predicted_finish = action(&db, ids);
  db.RunUntilIdle();
  outcome.actual_finish = db.info(ids[0])->finish_time;
  return outcome;
}

}  // namespace

int main() {
  bench::Banner(
      "Extension: Section 3.1 decision ladder (raise priority, then "
      "block victims)",
      "each rung shortens the target further; predictions match actuals "
      "to scheduling-quantum precision");

  storage::Catalog catalog;

  sim::SeriesTable table(
      "Target finish time by intervention", "rung",
      {"predicted_finish_s", "actual_finish_s"});
  std::vector<std::string> rungs;

  // Rung 0: do nothing.
  {
    auto outcome = Run(&catalog, [](sched::Rdbms* db,
                                    const std::vector<QueryId>& ids) {
      pi::StageProfile::Compute({}, 1.0);  // no-op; keep signature simple
      std::vector<pi::QueryLoad> loads;
      for (const auto& info : db->RunningQueries()) {
        loads.push_back(pi::QueryLoad{info.id, info.estimated_remaining_cost,
                                      info.weight});
      }
      auto profile =
          pi::StageProfile::Compute(loads, db->EffectiveRate());
      return profile.ok() ? *profile->RemainingTimeOf(ids[0]) : -1.0;
    });
    rungs.push_back("baseline");
    table.AddRow(0, {outcome.predicted_finish, outcome.actual_finish});
  }

  // Rungs 1-3: raise priority.
  int rung = 1;
  for (Priority p : {Priority::kNormal, Priority::kHigh,
                     Priority::kCritical}) {
    auto outcome =
        Run(&catalog, [p](sched::Rdbms* db, const std::vector<QueryId>& ids) {
          wlm::WlmAdvisor advisor(db);
          auto advice = advisor.SpeedUpByPriority(ids[0], p);
          return advice.ok() ? advice->new_remaining : -1.0;
        });
    rungs.push_back(std::string("raise_to_") +
                    std::string(PriorityName(p)));
    table.AddRow(rung++, {outcome.predicted_finish, outcome.actual_finish});
  }

  // Rungs 4-6: highest priority plus h blocked victims.
  for (int h = 1; h <= 3; ++h) {
    auto outcome = Run(
        &catalog, [h](sched::Rdbms* db, const std::vector<QueryId>& ids) {
          wlm::WlmAdvisor advisor(db);
          auto raise =
              advisor.SpeedUpByPriority(ids[0], Priority::kCritical);
          if (!raise.ok()) return -1.0;
          auto block = advisor.SpeedUpQuery(ids[0], h);
          if (!block.ok()) return -1.0;
          return raise->new_remaining - block->time_saved;
        });
    rungs.push_back("critical_plus_block_" + std::to_string(h));
    table.AddRow(rung++, {outcome.predicted_finish, outcome.actual_finish});
  }

  table.PrintText();
  std::printf("\nrungs:");
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    std::printf(" %zu=%s", i, rungs[i].c_str());
  }
  std::printf("\n");
  return 0;
}
