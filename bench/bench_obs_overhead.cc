// bench_obs_overhead: the cost of the observability layer.
//
// The tracer's contract is that instrumentation left compiled into the
// hot paths is effectively free while tracing is disabled — every entry
// point is one relaxed atomic load. This bench puts a number on that:
//
//   BM_RdbmsStep/0 vs /1      a full Rdbms::Step quantum over eight
//                             never-finishing queries, tracing off/on;
//                             the off case must sit within noise (<5%)
//                             of a build without any instrumentation
//   BM_TracerInstant/0,1      a single instant-event record, off/on
//   BM_TraceSpan/0,1          RAII span construct+destroy, off/on
//   BM_AuditorObserve         one estimate observation (with periodic
//                             trajectory scoring folded in)
//
// Run: ./bench_obs_overhead [--benchmark_filter=...]

#include <benchmark/benchmark.h>

#include "engine/planner.h"
#include "obs/auditor.h"
#include "obs/tracer.h"
#include "sched/rdbms.h"
#include "storage/catalog.h"

using namespace mqpi;

namespace {

void BM_RdbmsStep(benchmark::State& state) {
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.1;
  options.cost_model.noise_sigma = 0.0;
  sched::Rdbms db(&catalog, options);
  for (int i = 0; i < 8; ++i) {
    // Effectively infinite cost: the running set never changes, so
    // every iteration steps the same eight queries.
    (void)db.Submit(engine::QuerySpec::Synthetic(1e12));
  }
  obs::GlobalTracer()->set_enabled(state.range(0) != 0);
  for (auto _ : state) {
    db.Step(options.quantum);
  }
  state.SetItemsProcessed(state.iterations());
  obs::GlobalTracer()->set_enabled(false);
  obs::GlobalTracer()->Clear();
}
BENCHMARK(BM_RdbmsStep)->Arg(0)->Arg(1);

void BM_TracerInstant(benchmark::State& state) {
  obs::Tracer tracer(
      {.capacity = 1 << 14, .stripes = 8, .enabled = state.range(0) != 0});
  for (auto _ : state) {
    tracer.Instant("bench", "event", /*query=*/1, "v", 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerInstant)->Arg(0)->Arg(1);

void BM_TraceSpan(benchmark::State& state) {
  obs::Tracer tracer(
      {.capacity = 1 << 14, .stripes = 8, .enabled = state.range(0) != 0});
  for (auto _ : state) {
    obs::TraceSpan span(&tracer, "bench", "span");
    span.arg("v", 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpan)->Arg(0)->Arg(1);

void BM_AuditorObserve(benchmark::State& state) {
  obs::EstimateAuditor auditor;
  QueryId id = 1;
  int samples = 0;
  SimTime t = 0.0;
  for (auto _ : state) {
    obs::EstimateObservation observation;
    observation.id = id;
    observation.time = t;
    observation.eta_single = 10.0 - 0.1 * samples;
    observation.eta_multi = 10.0 - 0.1 * samples;
    // Every 64th observation terminates the query, folding the cost of
    // trajectory scoring into the amortized figure.
    if (++samples == 64) {
      observation.terminal = true;
      observation.finished = true;
      observation.finish_time = t;
      samples = 0;
      ++id;
    }
    auditor.Observe(observation);
    t += 0.1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AuditorObserve);

}  // namespace

BENCHMARK_MAIN();
