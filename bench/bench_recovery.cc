// Recovery-plane benchmark: what durability costs while the service is
// alive, and what death costs when it has to be survived.
//
// For each scale (journaled input events), the bench
//   - drives a manual-mode PiService with a DurableLog event sink
//     (submissions, scheduled arrivals, control calls, steps,
//     publishes) and reports journal append throughput (events/s) and
//     on-disk bytes per event;
//   - cuts a checkpoint at the end and reports its latency and size
//     (the checkpoint is the consolidated event history, so this is
//     the full genesis-to-cut image, worst case);
//   - "crashes" (detaches the sink mid-flight) and recovers the
//     directory, reporting replay throughput (events/s) and wall time,
//     and asserting the recovered snapshot is byte-identical to the
//     pre-crash one — a benchmark run that recovers to the wrong state
//     exits nonzero.
//
// Writes BENCH_recovery.json.

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "common/random.h"
#include "engine/planner.h"
#include "recover/durable_log.h"
#include "recover/recovery.h"
#include "service/pi_service.h"
#include "service/session.h"
#include "storage/catalog.h"

using namespace mqpi;

namespace {

double NowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t FileBytes(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0
             ? static_cast<std::uint64_t>(st.st_size)
             : 0;
}

struct ScaleResult {
  std::uint64_t events = 0;
  double append_events_per_sec = 0.0;
  double journal_bytes_per_event = 0.0;
  double checkpoint_ms = 0.0;
  std::uint64_t checkpoint_bytes = 0;
  double recover_ms = 0.0;
  double replay_events_per_sec = 0.0;
  bool verified = false;
  bool byte_identical = false;
};

ScaleResult RunScale(const storage::Catalog* catalog, std::uint64_t target) {
  char tmpl[] = "/tmp/mqpi_bench_recover_XXXXXX";
  const std::string dir = ::mkdtemp(tmpl);

  ScaleResult result;
  std::string pre;
  {
    auto log = std::make_unique<recover::DurableLog>();
    if (!log->Open(dir, {}).ok()) std::abort();

    service::PiServiceOptions options;
    options.rdbms.processing_rate = 200.0;
    options.rdbms.quantum = 0.25;
    options.rdbms.cost_model.noise_sigma = 0.0;
    options.start_ticker = false;
    options.event_sink = log.get();
    service::PiService service(catalog, options);
    auto session = service.OpenSession("bench");

    Rng rng(20060326);
    const double start = NowS();
    // Keep a rolling population: submit, step, control, publish until
    // the history reaches the target.
    std::vector<QueryId> live;
    while (log->history_size() < target) {
      auto id = session->Submit(
          engine::QuerySpec::Synthetic(rng.Uniform(40.0, 400.0)));
      if (id.ok()) live.push_back(*id);
      if (live.size() > 8) {
        (void)session->Abort(live.front());
        live.erase(live.begin());
      }
      if (!service.Advance(0.5).ok()) std::abort();
      service.PublishNow();
    }
    const double append_s = NowS() - start;
    result.events = log->history_size();
    result.append_events_per_sec =
        static_cast<double>(result.events) / append_s;
    result.journal_bytes_per_event =
        static_cast<double>(
            FileBytes(recover::DurableLog::JournalPath(dir, 0))) /
        static_cast<double>(result.events);

    const double ckpt_start = NowS();
    if (!recover::Checkpoint(&service, log.get()).ok()) std::abort();
    result.checkpoint_ms = (NowS() - ckpt_start) * 1e3;
    result.checkpoint_bytes = FileBytes(recover::DurableLog::CheckpointPath(
        dir, log->active_index()));

    // A little post-checkpoint activity so recovery replays both the
    // checkpoint image and a journal tail, then crash.
    if (!service.Advance(0.5).ok()) std::abort();
    service.PublishNow();
    pre = recover::EncodeSnapshotBytes(service.BuildUnpublishedSnapshot());
    (void)log->Sync();
    service.SetEventSink(nullptr);
    session->Close();
  }

  const double recover_start = NowS();
  service::PiServiceOptions options;
  options.rdbms.processing_rate = 200.0;
  options.rdbms.quantum = 0.25;
  options.rdbms.cost_model.noise_sigma = 0.0;
  options.start_ticker = false;
  auto recovered = recover::Recover(catalog, dir, options);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.status().ToString().c_str());
    std::abort();
  }
  result.recover_ms = (NowS() - recover_start) * 1e3;
  result.replay_events_per_sec =
      static_cast<double>(recovered->events_replayed) /
      (result.recover_ms / 1e3);
  result.verified = recovered->verified;
  result.byte_identical =
      recover::EncodeSnapshotBytes(
          recovered->service->BuildUnpublishedSnapshot()) == pre;

  const std::string cleanup = "rm -rf '" + dir + "'";
  (void)::system(cleanup.c_str());
  return result;
}

}  // namespace

int main() {
  storage::Catalog catalog;
  const std::vector<std::uint64_t> scales = {500, 2000, 10000};

  std::printf("%10s %14s %10s %12s %12s %12s %9s %6s\n", "events",
              "append-ev/s", "B/event", "ckpt-ms", "ckpt-bytes",
              "recover-ms", "replay/s", "exact");
  std::vector<ScaleResult> results;
  bool all_exact = true;
  for (const std::uint64_t scale : scales) {
    const ScaleResult r = RunScale(&catalog, scale);
    results.push_back(r);
    all_exact = all_exact && r.verified && r.byte_identical;
    std::printf("%10llu %14.0f %10.1f %12.2f %12llu %12.2f %9.0f %6s\n",
                static_cast<unsigned long long>(r.events),
                r.append_events_per_sec, r.journal_bytes_per_event,
                r.checkpoint_ms,
                static_cast<unsigned long long>(r.checkpoint_bytes),
                r.recover_ms, r.replay_events_per_sec,
                r.verified && r.byte_identical ? "yes" : "NO");
  }

  std::FILE* json = std::fopen("BENCH_recovery.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_recovery.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"recovery\",\n  \"scales\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    std::fprintf(
        json,
        "    {\"events\": %llu, \"append_events_per_sec\": %.0f,\n"
        "     \"journal_bytes_per_event\": %.1f, \"checkpoint_ms\": %.3f,\n"
        "     \"checkpoint_bytes\": %llu, \"recover_ms\": %.3f,\n"
        "     \"replay_events_per_sec\": %.0f, \"verified\": %s,\n"
        "     \"byte_identical\": %s}%s\n",
        static_cast<unsigned long long>(r.events), r.append_events_per_sec,
        r.journal_bytes_per_event, r.checkpoint_ms,
        static_cast<unsigned long long>(r.checkpoint_bytes), r.recover_ms,
        r.replay_events_per_sec, r.verified ? "true" : "false",
        r.byte_identical ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nresults written to BENCH_recovery.json\n");
  return all_exact ? 0 : 1;
}
