// Figure 5: the Non-empty Admission Queue (NAQ) experiment
// (Section 5.2.2).
//
// Three queries with N1=50, N2=10, N3=20 enter the admission queue at
// time 0 under a policy of at most two concurrent queries: Q1 and Q2
// start, Q3 waits until Q2 finishes. For Q1, three estimators are
// traced: the single-query PI, a multi-query PI that ignores the
// admission queue, and the full queue-aware multi-query PI.
//
// Paper shape (with their data, Q2 finishes at ~97 s, Q3 at ~291 s,
// Q1 at ~390 s): only the queue-aware estimate is accurate from time 0;
// the queue-blind multi-query estimate under-estimates until Q3 starts;
// the single-query estimate stays too high until Q3 finishes.

#include <cstdio>

#include "bench_util.h"
#include "pi/pi_manager.h"
#include "sim/report.h"
#include "sim/runner.h"

using namespace mqpi;

int main() {
  bench::Banner(
      "Figure 5: NAQ experiment (N1=50, N2=10, N3=20, max 2 concurrent)",
      "queue-aware multi-query estimate accurate from time 0; queue-blind "
      "multi-query underestimates before Q3 starts; single-query worst");

  // Build the three part tables exactly as the paper sizes them.
  storage::Catalog catalog;
  storage::TpcrGenerator generator(
      {.num_part_keys = 5000, .matches_per_key = 30, .seed = 42});
  auto check = [](const Status& status) {
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(1);
    }
  };
  check(generator.BuildLineitem(&catalog));
  check(generator.BuildPartTable(&catalog, "part_q1", 50));
  check(generator.BuildPartTable(&catalog, "part_q2", 10));
  check(generator.BuildPartTable(&catalog, "part_q3", 20));

  // Measure true costs for calibration: C is set so Q1's total
  // execution spans ~390 simulated seconds as in the paper's figure.
  storage::BufferManager scratch;
  engine::Planner probe(&catalog, &scratch, {.noise_sigma = 0.0});
  const double c1 = *probe.MeasureTrueCost(
      engine::QuerySpec::TpcrPartPrice("part_q1"));
  const double c2 = *probe.MeasureTrueCost(
      engine::QuerySpec::TpcrPartPrice("part_q2"));
  const double c3 = *probe.MeasureTrueCost(
      engine::QuerySpec::TpcrPartPrice("part_q3"));

  sched::RdbmsOptions options;
  options.processing_rate = (c1 + c2 + c3) / 390.0;
  options.max_concurrent = 2;
  options.quantum = 0.25;
  options.cost_model.noise_sigma = 0.1;
  sched::Rdbms db(&catalog, options);

  pi::PiManager pis(&db, {.sample_interval = 10.0,
                          .record_queue_blind_variant = true});
  sim::SimulationRunner runner(&db, &pis);

  auto q1 = runner.SubmitNow(engine::QuerySpec::TpcrPartPrice("part_q1"));
  auto q2 = runner.SubmitNow(engine::QuerySpec::TpcrPartPrice("part_q2"));
  auto q3 = runner.SubmitNow(engine::QuerySpec::TpcrPartPrice("part_q3"));
  check(q1.status());
  check(q2.status());
  check(q3.status());
  pis.Track(*q1);

  if (db.info(*q3)->state != sched::QueryState::kQueued) {
    std::fprintf(stderr, "expected Q3 to wait in the admission queue\n");
    return 1;
  }

  runner.RunUntilFinished({*q1, *q2, *q3});
  const SimTime q1_finish = db.info(*q1)->finish_time;

  sim::SeriesTable fig5(
      "Figure 5: remaining execution time estimated over time for Q1",
      "time_s", {"actual_s", "single_query_s", "multi_no_queue_s",
                 "multi_queue_aware_s"});
  for (const auto& sample : pis.Trace(*q1)) {
    fig5.AddRow(sample.time, {q1_finish - sample.time, sample.single,
                              sample.multi_no_queue, sample.multi});
  }
  bench::PrintTable(fig5);

  std::printf("\nTimeline: Q2 finished at %.1f s (paper: 97 s), Q3 started "
              "at %.1f and finished at %.1f s (paper: 291 s), Q1 finished "
              "at %.1f s (paper: ~390 s)\n",
              db.info(*q2)->finish_time, db.info(*q3)->start_time,
              db.info(*q3)->finish_time, q1_finish);

  // Quantify estimator quality over Q1's lifetime.
  double err_single = 0.0, err_blind = 0.0, err_aware = 0.0;
  int count = 0;
  for (const auto& sample : pis.Trace(*q1)) {
    const double actual = q1_finish - sample.time;
    if (actual <= 0.0 || sample.single >= kInfiniteTime) continue;
    err_single += RelativeError(sample.single, actual);
    err_blind += RelativeError(sample.multi_no_queue, actual);
    err_aware += RelativeError(sample.multi, actual);
    ++count;
  }
  std::printf("\nMean relative error over Q1's run: single-query %.1f%%, "
              "multi-query w/o queue %.1f%%, multi-query with queue %.1f%%\n",
              100.0 * err_single / count, 100.0 * err_blind / count,
              100.0 * err_aware / count);
  return 0;
}
