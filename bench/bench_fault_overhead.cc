// bench_fault_overhead: the cost of the fault-injection harness.
//
// The FaultInjector's contract mirrors the tracer's: wiring left
// compiled into the hot paths must be effectively free while no fault
// is armed. Each wired point costs one null check plus (with an
// injector attached) one relaxed atomic load of the armed-point count.
//
//   BM_RdbmsStep/0            no injector attached (the null branch)
//   BM_RdbmsStep/1            injector attached, nothing armed
//   BM_RdbmsStep/2            injector attached, rate-collapse armed
//                             at p=0.01 (locked evaluation per quantum)
//   BM_Evaluate/0,1           one Evaluate() call, disarmed/armed
//   BM_EnabledGate            the bare enabled() hot-path gate
//
// Run: ./bench_fault_overhead [--benchmark_filter=...]

#include <benchmark/benchmark.h>

#include "engine/planner.h"
#include "fault/fault_injector.h"
#include "sched/rdbms.h"
#include "storage/catalog.h"

using namespace mqpi;

namespace {

void BM_RdbmsStep(benchmark::State& state) {
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.1;
  options.cost_model.noise_sigma = 0.0;
  sched::Rdbms db(&catalog, options);
  for (int i = 0; i < 8; ++i) {
    // Effectively infinite cost: the running set never changes, so
    // every iteration steps the same eight queries.
    (void)db.Submit(engine::QuerySpec::Synthetic(1e12));
  }
  fault::FaultInjector injector;
  if (state.range(0) >= 1) db.SetFaultInjector(&injector);
  if (state.range(0) >= 2) {
    // Rare-but-armed: the realistic chaos-run configuration. A fire
    // only multiplies the quantum's rate, so the running set is
    // untouched and iterations stay comparable.
    injector.ArmProbability(fault::kSchedRateCollapse, 0.01, 0.5);
  }
  for (auto _ : state) {
    db.Step(options.quantum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RdbmsStep)->Arg(0)->Arg(1)->Arg(2);

void BM_Evaluate(benchmark::State& state) {
  fault::FaultInjector injector;
  if (state.range(0) != 0) {
    injector.ArmProbability(fault::kSchedQuantumStall, 0.001);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(injector.Evaluate(fault::kSchedQuantumStall));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Evaluate)->Arg(0)->Arg(1);

void BM_EnabledGate(benchmark::State& state) {
  fault::FaultInjector injector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(injector.enabled());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnabledGate);

}  // namespace

BENCHMARK_MAIN();
