// Extension: Section 4.1's open question. The paper suspects that
// "because the PI adjusts its estimates 'on the fly' as it discovers
// that they are inaccurate, it may not be worth the effort to improve
// the precision of these estimates — but this is still an open
// question".
//
// This bench measures it. The Figure 11 scenario runs with
// deliberately bad statistics (log-normal sigma 0.6) and the multi-PI
// maintenance decision is optionally revised mid-window — with PI
// estimates (1 or 3 revisions) and, as an upper bound on what any
// revision scheme could gain, with *true* remaining costs (oracle
// revision). If even the oracle revision barely moves UW/TW, the
// paper's suspicion holds: the single PI-guided decision already
// captures nearly all the value, because under Case 2 an early abort
// only helps when it rescues *other* queries, and fair sharing makes
// that rescue rare.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "pi/pi_manager.h"
#include "sim/report.h"
#include "wlm/wlm_advisor.h"

using namespace mqpi;

namespace {

struct Scenario {
  std::unique_ptr<sched::Rdbms> db;
  std::map<QueryId, int> rank_of;
  std::vector<sched::QueryInfo> running;
  double total_work = 0.0;
  SimTime rt = 0.0;
};

std::unique_ptr<Scenario> Prepare(bench::WorkloadFixture* fixture,
                                  engine::Planner* probe, double rate,
                                  std::uint64_t seed) {
  auto scenario = std::make_unique<Scenario>();
  Rng rng(seed);
  sched::RdbmsOptions options;
  options.processing_rate = rate;
  options.max_concurrent = 10;
  options.quantum = 0.5;
  options.cost_model.noise_sigma = 0.6;  // deliberately bad statistics
  options.cost_model.noise_seed = rng.Next();
  scenario->db = std::make_unique<sched::Rdbms>(&fixture->catalog, options);
  for (int i = 0; i < 10; ++i) {
    const int rank = fixture->workload->SampleRank(&rng);
    auto id = scenario->db->Submit(fixture->workload->SpecForRank(rank));
    scenario->rank_of[*id] = rank;
    const double cost = *fixture->workload->TrueCostOfRank(probe, rank);
    scenario->db->FastForward(*id, rng.Uniform(0.0, 0.8) * cost);
    scenario->total_work += cost;
  }
  scenario->db->Step(4.0);  // a short settling period
  scenario->rt = scenario->db->now();
  scenario->running = scenario->db->RunningQueries();
  return scenario;
}

}  // namespace

int main() {
  bench::Banner(
      "Extension: Section 4.1's open question — is mid-window revision "
      "worth it?",
      "the paper suspects not ('it may not be worth the effort'); if "
      "even oracle revision barely lowers UW/TW, the suspicion holds");

  auto fixture = bench::MakeWorkload(
      {.max_rank = 100, .a = 2.2, .n_scale = 1});
  storage::BufferManager scratch;
  engine::Planner probe(&fixture->catalog, &scratch, {.noise_sigma = 0.0});
  const double rate = 0.07 * *fixture->workload->AverageTrueCost(&probe);
  const int runs = bench::NumRuns(20);
  std::printf("C = %.1f U/s, noise sigma 0.6, %d runs, seed=%llu\n\n", rate,
              runs, static_cast<unsigned long long>(bench::BaseSeed()));

  sim::SeriesTable table(
      "Unfinished work (UW/TW, Case 2) vs revision policy "
      "(3=PI-revised x3, 4=oracle-revised x3)",
      "policy", {"uw_over_tw"});

  // policy: 0/1/3 = PI revisions; 4 = three truth-based revisions.
  for (int policy : {0, 1, 3, 4}) {
    const int revisions = policy == 4 ? 3 : policy;
    const bool oracle = policy == 4;
    RunningStats uw;
    for (int run = 0; run < runs; ++run) {
      const std::uint64_t seed =
          bench::BaseSeed() + 2003ull * static_cast<std::uint64_t>(run);
      auto scenario = Prepare(fixture.get(), &probe, rate, seed);
      auto* db = scenario->db.get();

      // Deadline: 60% of the analytic no-interruption span.
      double remaining = 0.0;
      for (const auto& info : scenario->running) {
        const double total = *fixture->workload->TrueCostOfRank(
            &probe, scenario->rank_of[info.id]);
        remaining += total - info.completed_work;
      }
      const double deadline = 0.6 * remaining / rate;

      wlm::WlmAdvisor advisor(db);
      auto plan = advisor.PrepareMaintenance(
          deadline, wlm::LossMetric::kTotalCost,
          wlm::MaintenanceMethod::kMultiPi, nullptr);
      if (!plan.ok()) continue;
      std::vector<QueryId> aborted = plan->abort_now;

      // Mid-window revisions at even spacing.
      const SimTime start = db->now();
      SimTime elapsed = 0.0;
      for (int r = 1; r <= revisions; ++r) {
        const SimTime target =
            deadline * static_cast<double>(r) /
            static_cast<double>(revisions + 1);
        db->RunUntilIdle(start + target);
        elapsed = db->now() - start;
        if (oracle) {
          // Truth-based revision: exact knapsack on true remaining.
          std::vector<wlm::MaintenanceQuery> truth;
          for (const auto& info : db->RunningQueries()) {
            const double total = *fixture->workload->TrueCostOfRank(
                &probe, scenario->rank_of[info.id]);
            truth.push_back(wlm::MaintenanceQuery{
                info.id, info.completed_work,
                total - info.completed_work});
          }
          auto revised = wlm::MaintenancePlanner::PlanOptimal(
              truth, deadline - elapsed, rate,
              wlm::LossMetric::kTotalCost);
          if (revised.ok()) {
            for (QueryId id : revised->abort_now) {
              if (db->Abort(id).ok()) aborted.push_back(id);
            }
          }
        } else {
          auto revised = advisor.ReviseMaintenance(
              deadline - elapsed, wlm::LossMetric::kTotalCost);
          if (revised.ok()) {
            aborted.insert(aborted.end(), revised->abort_now.begin(),
                           revised->abort_now.end());
          }
        }
      }
      db->RunUntilIdle(start + deadline);
      for (const auto& info : advisor.AbortAllUnfinished()) {
        aborted.push_back(info.id);
      }

      double unfinished = 0.0;
      for (QueryId id : aborted) {
        unfinished += *fixture->workload->TrueCostOfRank(
            &probe, scenario->rank_of[id]);
      }
      uw.Observe(unfinished / scenario->total_work);
    }
    table.AddRow(policy, {uw.mean()});
    std::printf("policy=%d (%s, %d revisions) done (UW/TW %.3f)\n", policy,
                oracle ? "oracle" : "PI", revisions, uw.mean());
  }
  std::printf("\n");
  bench::PrintTable(table);
  return 0;
}
