// Batch-estimate benchmark: estimate-all over n running queries, flat
// SoA kernel vs. a per-query treap loop.
//
// The incremental engine already answers one estimate in O(log n); a
// snapshot wants all n of them every quantum, and n tree walks lose
// the constants to cache misses and per-call overhead. The batch
// kernel answers all n in one elementwise sweep over three flat
// arrays (SIMD where the CPU has it). This bench measures ns/query
// for both in the steady state (progress-only quanta: the SoA mirror
// is regenerated once and then only the scalar offset moves),
// cross-checks agreement, and writes BENCH_batch_estimate.json next
// to the binary.
//
// Modes:
//   bench_batch_estimate               full comparison at
//                                      n = 100 / 5000 / 50000;
//                                      enforces >= 5x at n = 5000
//   bench_batch_estimate --perfsmoke   fast CI assertion (ctest label
//                                      "perfsmoke"): 50 steady-state
//                                      estimate-alls at n = 1000 must
//                                      cost exactly ONE mirror
//                                      regeneration (every later call
//                                      a pure sweep, pinned by the
//                                      hit/regen counters) and beat
//                                      the treap loop by >= 3x
//                                      (relative, no absolute
//                                      wall-clock thresholds)

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "pi/batch_kernel.h"
#include "pi/incremental_forecast.h"

using namespace mqpi;

namespace {

constexpr double kRate = 100.0;

// n long-running queries; ids are 1..n so id -> index is trivial for
// the cross-check. Costs/weights vary so thresholds spread out.
std::unique_ptr<pi::IncrementalForecast> MakeEngine(int n) {
  auto engine = std::make_unique<pi::IncrementalForecast>();
  for (int i = 0; i < n; ++i) {
    const double cost = 1000.0 + 0.5 * (i % 997);
    const double weight = 1.0 + 0.25 * (i % 7);
    auto status = engine->Insert(static_cast<QueryId>(i + 1), cost, weight);
    if (!status.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  return engine;
}

// Steady-state quantum: pure progress, no structural change. Small
// enough that no query crosses its threshold over any rep count used
// here (min remaining ratio is >= 400 virtual units at these loads).
constexpr double kQuantumDx = 1e-3;

double RunTreapLoop(pi::IncrementalForecast* engine, int reps,
                    std::vector<double>* last) {
  const std::size_t n = engine->size();
  last->assign(n, 0.0);
  double total_ns = 0.0;
  for (int r = 0; r < reps; ++r) {
    engine->Advance(kQuantumDx);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      auto eta = engine->RemainingTime(static_cast<QueryId>(i + 1), kRate);
      if (!eta.ok()) std::exit(1);
      (*last)[i] = *eta;
    }
    const auto end = std::chrono::steady_clock::now();
    total_ns += std::chrono::duration<double, std::nano>(end - start).count();
  }
  return total_ns / (static_cast<double>(reps) * static_cast<double>(n));
}

double RunBatch(pi::IncrementalForecast* engine,
                pi::BatchEstimateKernel* kernel, int reps,
                std::vector<double>* last) {
  const std::size_t n = engine->size();
  last->assign(n, 0.0);
  double total_ns = 0.0;
  for (int r = 0; r < reps; ++r) {
    engine->Advance(kQuantumDx);
    const auto start = std::chrono::steady_clock::now();
    const auto batch = kernel->EstimateAll(*engine, kRate);
    const auto end = std::chrono::steady_clock::now();
    if (batch.size != n) std::exit(1);
    total_ns += std::chrono::duration<double, std::nano>(end - start).count();
    for (std::size_t i = 0; i < n; ++i) {
      (*last)[i] = batch.etas[i];  // ids are 1..n, already id-sorted
    }
  }
  return total_ns / (static_cast<double>(reps) * static_cast<double>(n));
}

// Treap and kernel, probed at the same offset, must agree to the
// engine tolerance (summation order and FMA contraction differ).
bool Agree(const std::vector<double>& treap,
           const std::vector<double>& batch) {
  if (treap.size() != batch.size()) return false;
  for (std::size_t i = 0; i < treap.size(); ++i) {
    const double tol = 1e-9 * std::max(1.0, std::fabs(treap[i]));
    if (std::fabs(treap[i] - batch[i]) > tol) return false;
  }
  return true;
}

int Perfsmoke() {
  const int n = 1000;
  const int reps = 50;
  auto engine = MakeEngine(n);
  pi::BatchEstimateKernel kernel;
  std::vector<double> batch_last;
  const double batch_ns = RunBatch(engine.get(), &kernel, reps, &batch_last);
  // Steady state: the first call builds the mirror, every later call
  // must be a pure sweep. Any extra regen means the version discipline
  // broke (e.g. progress bumping the structure version).
  if (kernel.regens() != 1 ||
      kernel.hits() != static_cast<std::uint64_t>(reps) - 1) {
    std::fprintf(stderr,
                 "perfsmoke FAIL: %llu regens / %llu hits for %d "
                 "steady-state estimate-alls at n=%d — expected exactly 1 "
                 "regen, all later calls pure sweeps\n",
                 static_cast<unsigned long long>(kernel.regens()),
                 static_cast<unsigned long long>(kernel.hits()), reps, n);
    return 1;
  }
  std::vector<double> treap_last;
  const double treap_ns = RunTreapLoop(engine.get(), reps, &treap_last);
  // The treap ran after the batch, one kQuantumDx further along; probe
  // the kernel once more at the same offset for the agreement check.
  std::vector<double> batch_now;
  RunBatch(engine.get(), &kernel, 1, &batch_now);
  treap_last.clear();
  for (int i = 0; i < n; ++i) {
    auto eta = engine->RemainingTime(static_cast<QueryId>(i + 1), kRate);
    if (!eta.ok()) return 1;
    treap_last.push_back(*eta);
  }
  if (!Agree(treap_last, batch_now)) {
    std::fprintf(stderr, "perfsmoke FAIL: treap and batch disagree\n");
    return 1;
  }
  const double speedup = treap_ns / (batch_ns > 0.0 ? batch_ns : 1e-9);
  if (speedup < 3.0) {
    std::fprintf(stderr,
                 "perfsmoke FAIL: batch %.1f ns/query vs treap loop %.1f "
                 "ns/query (%.1fx) at n=%d — the floor is 3x\n",
                 batch_ns, treap_ns, speedup, n);
    return 1;
  }
  std::printf(
      "perfsmoke OK [%s]: 1 regen + %llu sweeps, batch %.1f ns/query vs "
      "treap %.1f ns/query (%.1fx) at n=%d\n",
      pi::BatchEstimateKernel::ActiveIsaName(),
      static_cast<unsigned long long>(kernel.hits()), batch_ns, treap_ns,
      speedup, n);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--perfsmoke") == 0) {
    return Perfsmoke();
  }

  bench::Banner(
      "Batch estimate-all: ns per query, flat SoA sweep vs per-query "
      "treap loop, n running queries in the steady state",
      "the treap answers each query in O(log n) pointer chases; the "
      "kernel answers all n in one flat elementwise pass (SIMD where "
      "available), regenerated only on structural change");

  struct Scale {
    int n;
    int reps;
  };
  const Scale scales[] = {{100, 2000}, {5000, 200}, {50000, 20}};

  std::FILE* json = std::fopen("BENCH_batch_estimate.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_batch_estimate.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"batch_estimate\",\n"
               "  \"unit\": \"ns_per_query\",\n  \"isa\": \"%s\",\n"
               "  \"results\": [\n",
               pi::BatchEstimateKernel::ActiveIsaName());

  std::printf("dispatch: %s\n\n", pi::BatchEstimateKernel::ActiveIsaName());
  std::printf("%8s %16s %16s %9s %8s %8s\n", "n", "treap ns/query",
              "batch ns/query", "speedup", "regens", "sweeps");
  bool ok = true;
  for (std::size_t s = 0; s < std::size(scales); ++s) {
    const Scale& scale = scales[s];
    auto engine = MakeEngine(scale.n);
    pi::BatchEstimateKernel kernel;
    std::vector<double> treap_last, batch_last;
    const double batch_ns =
        RunBatch(engine.get(), &kernel, scale.reps, &batch_last);
    const double treap_ns =
        RunTreapLoop(engine.get(), scale.reps, &treap_last);
    // Re-probe the kernel at the treap loop's final offset so both
    // vectors describe the same instant.
    std::vector<double> batch_now;
    RunBatch(engine.get(), &kernel, 1, &batch_now);
    treap_last.clear();
    for (int i = 0; i < scale.n; ++i) {
      auto eta = engine->RemainingTime(static_cast<QueryId>(i + 1), kRate);
      if (!eta.ok()) return 1;
      treap_last.push_back(*eta);
    }
    if (!Agree(treap_last, batch_now)) {
      std::fprintf(stderr, "FAIL: treap and batch diverge at n=%d\n",
                   scale.n);
      ok = false;
    }
    if (kernel.regens() != 1) {
      std::fprintf(stderr,
                   "FAIL: %llu mirror regenerations at n=%d — progress-only "
                   "quanta must not invalidate the mirror\n",
                   static_cast<unsigned long long>(kernel.regens()),
                   scale.n);
      ok = false;
    }
    const double speedup = treap_ns / (batch_ns > 0.0 ? batch_ns : 1e-9);
    std::printf("%8d %16.1f %16.1f %8.1fx %8llu %8llu\n", scale.n, treap_ns,
                batch_ns, speedup,
                static_cast<unsigned long long>(kernel.regens()),
                static_cast<unsigned long long>(kernel.hits()));
    std::fprintf(json,
                 "    {\"n\": %d, \"treap_ns\": %.2f, \"batch_ns\": %.2f, "
                 "\"speedup\": %.1f}%s\n",
                 scale.n, treap_ns, batch_ns, speedup,
                 s + 1 < std::size(scales) ? "," : "");
    if (scale.n == 5000 && speedup < 5.0) {
      std::fprintf(stderr,
                   "FAIL: %.1fx at n=5000 — the acceptance bar is >= 5x "
                   "over the per-query treap loop\n",
                   speedup);
      ok = false;
    }
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  if (!ok) return 1;
  std::printf("\ntreap and batch agree at every scale; results written to "
              "BENCH_batch_estimate.json\n");
  return 0;
}
