// Incremental-forecast benchmark: steady-state cost of one running
// query estimate with n concurrent queries.
//
// The epoch-keyed forecast cache already collapses the n probes of one
// quantum to a single O(n log n) simulation — but the epoch moves
// every quantum, so a dashboard that asks even one question per
// quantum still pays a full simulation each time. The incremental
// virtual-time engine answers the same question in O(log n) from its
// closed-form prefix aggregates with no simulation at all; this bench
// measures ns/estimate for both paths in the one-estimate-per-quantum
// regime, cross-checks that they agree, and writes
// BENCH_incremental_forecast.json next to the binary.
//
// Modes:
//   bench_incremental_forecast               full comparison at
//                                            n = 100 / 5000 / 50000
//   bench_incremental_forecast --perfsmoke   fast CI assertion (ctest
//                                            label "perfsmoke"): 50
//                                            steady-state quanta at
//                                            n = 1000 must run ZERO
//                                            full simulations — every
//                                            estimate served by the
//                                            engine, counted via the
//                                            fallback and cache-miss
//                                            counters (no wall-clock
//                                            thresholds)

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "pi/multi_query_pi.h"
#include "sched/rdbms.h"
#include "storage/catalog.h"

using namespace mqpi;

namespace {

struct Fixture {
  storage::Catalog catalog;
  std::unique_ptr<sched::Rdbms> db;
  std::unique_ptr<pi::MultiQueryPi> pi;
  std::vector<QueryId> ids;
  sched::RdbmsOptions options;
};

// n long-running queries, nothing finishes during the run, total load
// well inside the forecast horizon so the fast path stays eligible.
std::unique_ptr<Fixture> MakeFixture(int n, bool incremental) {
  auto fx = std::make_unique<Fixture>();
  fx->options.processing_rate = 100.0;
  fx->options.quantum = 0.05;
  fx->options.cost_model.noise_sigma = 0.0;
  fx->db = std::make_unique<sched::Rdbms>(&fx->catalog, fx->options);
  pi::MultiQueryPiOptions options;
  options.enable_incremental = incremental;
  fx->pi = std::make_unique<pi::MultiQueryPi>(fx->db.get(), options);
  if (incremental) fx->pi->AttachLifecycleEvents(fx->db.get());
  fx->ids.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto id = fx->db->Submit(
        engine::QuerySpec::Synthetic(1000.0 + 0.5 * (i % 997)));
    if (!id.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   id.status().ToString().c_str());
      std::exit(1);
    }
    fx->ids.push_back(*id);
  }
  return fx;
}

struct RunResult {
  double ns_per_estimate = 0.0;
  std::uint64_t simulations = 0;     // full analytic forecasts
  std::uint64_t fast_path = 0;       // engine-served estimates
  std::vector<double> estimates;     // one per quantum (cross-check)
};

// One estimate per quantum against a rotating target: the dashboard
// pattern. Only the estimate call is timed — the scheduler step and
// the PI's per-step observation are the same for both paths.
RunResult Run(Fixture* fx, int quanta) {
  RunResult result;
  result.estimates.reserve(static_cast<std::size_t>(quanta));
  double total_ns = 0.0;
  for (int q = 0; q < quanta; ++q) {
    fx->db->Step(fx->options.quantum);
    fx->pi->ObserveStep();
    const QueryId target =
        fx->ids[static_cast<std::size_t>(q) % fx->ids.size()];
    auto info = fx->db->info(target);
    if (!info.ok()) std::exit(1);
    const auto start = std::chrono::steady_clock::now();
    auto eta = fx->pi->EstimateRemainingTime(*info);
    const auto end = std::chrono::steady_clock::now();
    if (!eta.ok()) {
      std::fprintf(stderr, "estimate failed: %s\n",
                   eta.status().ToString().c_str());
      std::exit(1);
    }
    total_ns += std::chrono::duration<double, std::nano>(end - start).count();
    result.estimates.push_back(*eta);
  }
  result.ns_per_estimate = total_ns / quanta;
  result.simulations = fx->pi->forecast_cache_misses();
  result.fast_path = fx->pi->incremental_fast_path();
  return result;
}

bool EstimatesAgree(const RunResult& a, const RunResult& b) {
  if (a.estimates.size() != b.estimates.size()) return false;
  for (std::size_t i = 0; i < a.estimates.size(); ++i) {
    const double tol = 1e-6 * std::max(1.0, std::fabs(b.estimates[i]));
    if (std::fabs(a.estimates[i] - b.estimates[i]) > tol) return false;
  }
  return true;
}

int Perfsmoke() {
  const int n = 1000;
  const int quanta = 50;
  auto fx = MakeFixture(n, /*incremental=*/true);
  const RunResult run = Run(fx.get(), quanta);
  const std::uint64_t fallbacks = fx->pi->incremental_fallback();
  if (run.simulations != 0 || fallbacks != 0 ||
      run.fast_path < static_cast<std::uint64_t>(quanta)) {
    std::fprintf(stderr,
                 "perfsmoke FAIL: %llu full simulations, %llu fallbacks, "
                 "%llu fast-path estimates for %d quanta at n=%d — steady "
                 "state must be simulation-free\n",
                 static_cast<unsigned long long>(run.simulations),
                 static_cast<unsigned long long>(fallbacks),
                 static_cast<unsigned long long>(run.fast_path), quanta, n);
    return 1;
  }
  std::printf(
      "perfsmoke OK: 0 simulations, 0 fallbacks, %llu fast-path estimates "
      "for %d quanta at n=%d, %.0f ns/estimate\n",
      static_cast<unsigned long long>(run.fast_path), quanta, n,
      run.ns_per_estimate);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--perfsmoke") == 0) {
    return Perfsmoke();
  }

  bench::Banner(
      "Incremental forecast: ns per steady-state estimate, one probe "
      "per quantum with n running queries",
      "the cached simulator re-simulates every quantum (~O(n log n) per "
      "probe); the virtual-time engine answers in O(log n) with zero "
      "simulations");

  struct Scale {
    int n;
    int quanta;
  };
  // Fewer quanta at large n on the simulator side; enough on each
  // scale for a stable average.
  const Scale scales[] = {{100, 400}, {5000, 40}, {50000, 8}};

  std::FILE* json = std::fopen("BENCH_incremental_forecast.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_incremental_forecast.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"incremental_forecast\",\n"
                     "  \"unit\": \"ns_per_estimate\",\n  \"results\": [\n");

  std::printf("%8s %16s %16s %9s %12s %12s\n", "n", "simulator ns/est",
              "incremental ns/e", "speedup", "sims", "fast path");
  bool ok = true;
  for (std::size_t s = 0; s < std::size(scales); ++s) {
    const Scale& scale = scales[s];
    auto sim_fx = MakeFixture(scale.n, /*incremental=*/false);
    const RunResult sim = Run(sim_fx.get(), scale.quanta);
    auto inc_fx = MakeFixture(scale.n, /*incremental=*/true);
    const RunResult inc = Run(inc_fx.get(), scale.quanta);
    if (!EstimatesAgree(inc, sim)) {
      std::fprintf(stderr,
                   "FAIL: incremental and simulator estimates diverge at "
                   "n=%d\n",
                   scale.n);
      ok = false;
    }
    if (inc.simulations != 0) {
      std::fprintf(stderr,
                   "FAIL: incremental path ran %llu full simulations at "
                   "n=%d — steady state must be simulation-free\n",
                   static_cast<unsigned long long>(inc.simulations),
                   scale.n);
      ok = false;
    }
    const double speedup =
        sim.ns_per_estimate /
        (inc.ns_per_estimate > 0.0 ? inc.ns_per_estimate : 1e-9);
    std::printf("%8d %16.0f %16.0f %8.1fx %12llu %12llu\n", scale.n,
                sim.ns_per_estimate, inc.ns_per_estimate, speedup,
                static_cast<unsigned long long>(sim.simulations),
                static_cast<unsigned long long>(inc.fast_path));
    std::fprintf(json,
                 "    {\"n\": %d, \"simulator_ns\": %.1f, "
                 "\"incremental_ns\": %.1f, \"speedup\": %.1f}%s\n",
                 scale.n, sim.ns_per_estimate, inc.ns_per_estimate, speedup,
                 s + 1 < std::size(scales) ? "," : "");
    if (scale.n == 5000 && speedup < 20.0) {
      std::fprintf(stderr,
                   "FAIL: %.1fx speedup at n=5000 — the acceptance bar is "
                   ">= 20x per steady-state estimate\n",
                   speedup);
      ok = false;
    }
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  if (!ok) return 1;
  std::printf("\nestimates agree at every scale; results written to "
              "BENCH_incremental_forecast.json\n");
  return 0;
}
