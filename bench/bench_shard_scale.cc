// Shard-scale benchmark: identical aggregate load behind 1/2/4/8
// core-pinned scheduler shards, measuring aggregate quanta/sec and the
// publish -> merged-visibility latency of the coordinator.
//
// Why sharding wins even on few cores: one PiService's quantum costs
// roughly f + n*u (fixed ticker overhead plus per-live-query work —
// estimate-all, snapshot build). Split the same n queries across N
// shards and each quantum costs f + (n/N)*u, so the fleet steps
// N-times cheaper quanta and aggregate quanta/sec approaches N*x the
// single scheduler's as n*u dominates f — with no global lock anywhere
// on the tick path to give it back. The coordinator's merge runs on
// the reader's clock (here a poller standing in for the server loop)
// and never blocks a shard.
//
// Modes:
//   bench_shard_scale              full sweep at shards = 1/2/4/8 with
//                                  the same aggregate load; writes
//                                  BENCH_shard_scale.json
//   bench_shard_scale --perfsmoke  fast CI gate (ctest label
//                                  "perfsmoke"): aggregate quanta/sec
//                                  at 4 shards must be >= 3x the
//                                  1-shard figure under the identical
//                                  aggregate load (relative comparison
//                                  on one box, no absolute wall-clock
//                                  thresholds)
//
// Env knobs: MQPI_SHARD_QUERIES (aggregate live queries, default
// 2000), MQPI_SHARD_WALL_MS (measured window per scale, default 600).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/planner.h"
#include "service/session.h"
#include "service/sharded_service.h"
#include "storage/catalog.h"

using namespace mqpi;

namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ScaleResult {
  int shards = 0;
  double quanta_per_sec = 0.0;
  std::uint64_t quanta = 0;
  std::uint64_t merges = 0;
  double merge_ns_mean = 0.0;
  double merge_ns_p99 = 0.0;
  double publish_to_merge_ms_mean = 0.0;
  double publish_to_merge_ms_p99 = 0.0;
};

// One measured window: `total_queries` long-lived queries split evenly
// across `shards` shards (the identical-aggregate-load invariant),
// tickers flat out, a poller thread standing in for the server loop's
// merge quantum.
ScaleResult RunScale(int shards, int total_queries, double wall_s) {
  storage::Catalog catalog;
  service::ShardedPiServiceOptions options;
  options.num_shards = shards;
  options.shard.rdbms.processing_rate = 100.0;
  options.shard.rdbms.quantum = 0.25;
  options.shard.time_scale = 0.0;     // flat out
  options.shard.start_ticker = false; // load first, then start
  options.pin_cpus = true;
  service::ShardedPiService coordinator(&catalog, options);

  // Load BEFORE the tickers start so every configuration measures the
  // same steady state. Costs are huge so nothing finishes mid-window
  // (a completion would shrink the live set and change the per-quantum
  // cost being compared).
  std::vector<std::unique_ptr<service::Session>> sessions;
  const int per_shard = total_queries / shards;
  for (int s = 0; s < shards; ++s) {
    auto session = coordinator.shard_service(s)->OpenSession(
        "bench-shard-" + std::to_string(s));
    for (int q = 0; q < per_shard; ++q) {
      auto id = session->Submit(engine::QuerySpec::Synthetic(1e9));
      if (!id.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     id.status().ToString().c_str());
        std::exit(1);
      }
    }
    sessions.push_back(std::move(session));
  }

  // Publish stamps, one atomic per shard, written by each shard's
  // publish hook (the O(1) path the server would use).
  std::vector<std::unique_ptr<std::atomic<std::int64_t>>> publish_ns;
  for (int s = 0; s < shards; ++s) {
    publish_ns.push_back(std::make_unique<std::atomic<std::int64_t>>(0));
  }
  for (int s = 0; s < shards; ++s) {
    std::atomic<std::int64_t>* stamp = publish_ns[std::size_t(s)].get();
    coordinator.shard_service(s)->SetPublishHook(
        [stamp](const service::SnapshotPtr&) {
          stamp->store(NowNs(), std::memory_order_release);
        });
  }

  coordinator.Start();

  // Poller = the coordinator quantum: merge once per pass, record how
  // stale the newest constituent shard publish was when the merge
  // became visible.
  std::atomic<bool> stop{false};
  std::vector<double> visibility_ms;
  std::thread poller([&] {
    service::SnapshotPtr prev = coordinator.GlobalSnapshot();
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      service::SnapshotPtr snap = coordinator.GlobalSnapshot();
      if (snap == prev) continue;
      const std::int64_t now = NowNs();
      std::int64_t lag = 0;
      for (std::size_t i = 0; i < snap->shard_loads.size(); ++i) {
        if (i < prev->shard_loads.size() &&
            snap->shard_loads[i].sequence == prev->shard_loads[i].sequence) {
          continue;  // this shard did not feed the new merge
        }
        const std::int64_t stamp =
            publish_ns[i]->load(std::memory_order_acquire);
        if (stamp != 0 && now - stamp > lag) lag = now - stamp;
      }
      if (lag > 0) visibility_ms.push_back(double(lag) / 1e6);
      prev = std::move(snap);
    }
  });

  // Settle, then measure a clean counter delta.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::uint64_t start_quanta = 0;
  for (int s = 0; s < shards; ++s) {
    start_quanta += coordinator.shard_service(s)
                        ->metrics()
                        ->counter("service.quanta_stepped")
                        ->value();
  }
  const std::int64_t t0 = NowNs();
  std::this_thread::sleep_for(std::chrono::duration<double>(wall_s));
  std::uint64_t end_quanta = 0;
  for (int s = 0; s < shards; ++s) {
    end_quanta += coordinator.shard_service(s)
                      ->metrics()
                      ->counter("service.quanta_stepped")
                      ->value();
  }
  const double measured_s = double(NowNs() - t0) / 1e9;

  stop.store(true, std::memory_order_release);
  poller.join();
  for (int s = 0; s < shards; ++s) {
    coordinator.shard_service(s)->SetPublishHook(nullptr);
  }
  coordinator.Stop();

  ScaleResult result;
  result.shards = shards;
  result.quanta = end_quanta - start_quanta;
  result.quanta_per_sec = double(result.quanta) / measured_s;
  result.merges = coordinator.metrics()->counter("coord.merges")->value();
  const service::Histogram* merge_ns =
      coordinator.metrics()->histogram("coord.merge_ns");
  if (merge_ns->count() > 0) {
    result.merge_ns_mean = merge_ns->sum() / double(merge_ns->count());
    result.merge_ns_p99 = merge_ns->Quantile(0.99);
  }
  if (!visibility_ms.empty()) {
    double sum = 0.0;
    for (double v : visibility_ms) sum += v;
    result.publish_to_merge_ms_mean = sum / double(visibility_ms.size());
    std::vector<double> sorted = visibility_ms;
    std::sort(sorted.begin(), sorted.end());
    result.publish_to_merge_ms_p99 =
        sorted[std::min(sorted.size() - 1,
                        std::size_t(0.99 * double(sorted.size())))];
  }
  for (auto& session : sessions) session->Close();
  return result;
}

int Perfsmoke() {
  const int queries = bench::EnvInt("MQPI_SHARD_QUERIES", 2000);
  const double wall_s =
      double(bench::EnvInt("MQPI_SHARD_WALL_MS", 600)) / 1e3;
  const ScaleResult one = RunScale(1, queries, wall_s);
  const ScaleResult four = RunScale(4, queries, wall_s);
  const double ratio =
      four.quanta_per_sec /
      (one.quanta_per_sec > 0.0 ? one.quanta_per_sec : 1e-9);
  if (ratio < 3.0) {
    std::fprintf(stderr,
                 "perfsmoke FAIL: %.0f quanta/s at 4 shards vs %.0f at 1 "
                 "shard (%.2fx) with %d aggregate queries — the floor is "
                 "3x\n",
                 four.quanta_per_sec, one.quanta_per_sec, ratio, queries);
    return 1;
  }
  std::printf(
      "perfsmoke OK: %.0f quanta/s at 4 shards vs %.0f at 1 shard (%.2fx) "
      "with %d aggregate queries; merge mean %.0f ns, publish->merge p99 "
      "%.2f ms\n",
      four.quanta_per_sec, one.quanta_per_sec, ratio, queries,
      four.merge_ns_mean, four.publish_to_merge_ms_p99);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--perfsmoke") == 0) {
    return Perfsmoke();
  }

  bench::Banner(
      "Shard scaling: aggregate quanta/sec at 1/2/4/8 core-pinned shards "
      "under the identical aggregate load, plus coordinator merge cost "
      "and publish->merged-visibility latency",
      "per-quantum cost is f + (n/N)*u, so aggregate throughput "
      "approaches N*x the single scheduler as per-query work dominates; "
      "the merge runs on the reader's clock and never blocks a shard");

  const int queries = bench::EnvInt("MQPI_SHARD_QUERIES", 2000);
  const double wall_s =
      double(bench::EnvInt("MQPI_SHARD_WALL_MS", 600)) / 1e3;
  const int scales[] = {1, 2, 4, 8};

  std::FILE* json = std::fopen("BENCH_shard_scale.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_shard_scale.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"shard_scale\",\n"
               "  \"aggregate_queries\": %d,\n"
               "  \"window_s\": %.3f,\n  \"results\": [\n",
               queries, wall_s);

  std::printf("aggregate load: %d long-lived queries, %.1fs window\n\n",
              queries, wall_s);
  std::printf("%7s %14s %9s %9s %14s %18s\n", "shards", "quanta/sec",
              "speedup", "merges", "merge ns mean", "pub->merge p99 ms");
  double baseline = 0.0;
  bool ok = true;
  for (std::size_t i = 0; i < std::size(scales); ++i) {
    const ScaleResult r = RunScale(scales[i], queries, wall_s);
    if (scales[i] == 1) baseline = r.quanta_per_sec;
    const double speedup =
        r.quanta_per_sec / (baseline > 0.0 ? baseline : 1e-9);
    std::printf("%7d %14.0f %8.2fx %9llu %14.0f %18.2f\n", r.shards,
                r.quanta_per_sec, speedup,
                static_cast<unsigned long long>(r.merges), r.merge_ns_mean,
                r.publish_to_merge_ms_p99);
    std::fprintf(
        json,
        "    {\"shards\": %d, \"quanta_per_sec\": %.0f, \"speedup\": "
        "%.2f, \"merges\": %llu, \"merge_ns_mean\": %.0f, "
        "\"merge_ns_p99\": %.0f, \"publish_to_merge_ms_mean\": %.3f, "
        "\"publish_to_merge_ms_p99\": %.3f}%s\n",
        r.shards, r.quanta_per_sec, speedup,
        static_cast<unsigned long long>(r.merges), r.merge_ns_mean,
        r.merge_ns_p99, r.publish_to_merge_ms_mean,
        r.publish_to_merge_ms_p99,
        i + 1 < std::size(scales) ? "," : "");
    if (scales[i] == 4 && speedup < 3.0) {
      std::fprintf(stderr,
                   "FAIL: %.2fx at 4 shards — the acceptance bar is >= 3x "
                   "aggregate quanta/sec over one shard\n",
                   speedup);
      ok = false;
    }
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  if (!ok) return 1;
  std::printf("\nresults written to BENCH_shard_scale.json\n");
  return 0;
}
