// Forecast-cache benchmark: per-quantum estimate cost with n tracked
// queries sampled every quantum.
//
// Uncached, every per-query estimate runs its own O(n log n) analytic
// simulation, so one quantum costs O(n^2 log n); with the epoch-keyed
// cache the n probes collapse to one simulation plus O(1) index
// lookups. The two paths must also produce byte-identical estimate
// traces — the cache is exact, never heuristic — which this bench
// cross-checks and fails hard on.
//
// Modes:
//   bench_forecast_cache               full comparison at n = 100/1000/5000
//   bench_forecast_cache --perfsmoke   fast CI assertion (ctest label
//                                      "perfsmoke"): 50 quanta at n = 1000
//                                      must run <= quanta + 2 full
//                                      simulations, counted via the
//                                      cache-miss counter (no wall-clock
//                                      thresholds, so it cannot flake on
//                                      slow machines)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "pi/pi_manager.h"
#include "sched/rdbms.h"
#include "storage/catalog.h"

using namespace mqpi;

namespace {

struct RunResult {
  double ms_per_quantum = 0.0;
  std::uint64_t simulations = 0;  // full analytic forecasts run
  std::vector<std::vector<pi::EstimateSample>> traces;
};

RunResult RunScenario(int n, int quanta, bool cached) {
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.05;
  options.cost_model.noise_sigma = 0.0;
  sched::Rdbms db(&catalog, options);

  pi::PiManagerOptions pm;
  pm.sample_interval = options.quantum;  // sample every quantum
  pm.multi.enable_forecast_cache = cached;
  // This bench isolates the forecast cache; the incremental engine
  // would bypass it entirely (see bench_incremental_forecast).
  pm.multi.enable_incremental = false;
  pi::PiManager pis(&db, pm);

  std::vector<QueryId> ids;
  ids.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Large, varied costs: nothing finishes, every query stays in the
    // modelled load for the whole run.
    auto id = db.Submit(engine::QuerySpec::Synthetic(1e5 + 37.0 * i));
    if (!id.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   id.status().ToString().c_str());
      std::exit(1);
    }
    pis.Track(*id);
    ids.push_back(*id);
  }

  const auto start = std::chrono::steady_clock::now();
  for (int q = 0; q < quanta; ++q) {
    db.Step(options.quantum);
    pis.AfterStep();
  }
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.ms_per_quantum =
      std::chrono::duration<double, std::milli>(end - start).count() /
      quanta;
  result.simulations = pis.multi()->forecast_cache_misses();
  result.traces.reserve(ids.size());
  for (QueryId id : ids) result.traces.push_back(pis.Trace(id));
  return result;
}

bool SamplesIdentical(const pi::EstimateSample& a,
                      const pi::EstimateSample& b) {
  return a.time == b.time && a.single == b.single && a.multi == b.multi &&
         a.multi_no_queue == b.multi_no_queue && a.speed == b.speed;
}

// Exact (bitwise-value) comparison of the recorded estimate traces.
bool TracesIdentical(const RunResult& a, const RunResult& b) {
  if (a.traces.size() != b.traces.size()) return false;
  for (std::size_t i = 0; i < a.traces.size(); ++i) {
    if (a.traces[i].size() != b.traces[i].size()) return false;
    for (std::size_t s = 0; s < a.traces[i].size(); ++s) {
      if (!SamplesIdentical(a.traces[i][s], b.traces[i][s])) return false;
    }
  }
  return true;
}

int Perfsmoke() {
  const int n = 1000;
  const int quanta = 50;
  const RunResult run = RunScenario(n, quanta, /*cached=*/true);
  const std::uint64_t budget = static_cast<std::uint64_t>(quanta) + 2;
  if (run.simulations > budget) {
    std::fprintf(stderr,
                 "perfsmoke FAIL: %llu full forecasts for %d quanta at "
                 "n=%d (budget %llu — the cache must hold within a "
                 "quantum)\n",
                 static_cast<unsigned long long>(run.simulations), quanta,
                 n, static_cast<unsigned long long>(budget));
    return 1;
  }
  std::printf(
      "perfsmoke OK: %llu full forecasts for %d quanta at n=%d "
      "(budget %llu), %.3f ms/quantum\n",
      static_cast<unsigned long long>(run.simulations), quanta, n,
      static_cast<unsigned long long>(budget), run.ms_per_quantum);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--perfsmoke") == 0) {
    return Perfsmoke();
  }

  bench::Banner(
      "Forecast cache: per-quantum estimate cost, n tracked queries "
      "sampled every quantum",
      "uncached grows ~O(n^2 log n) per quantum; cached stays ~O(n log n) "
      "with <= 1 simulation per quantum and identical estimates");

  // Fewer quanta at large n on the uncached side: that is the
  // quadratic path whose cost this table demonstrates.
  struct Scale {
    int n;
    int quanta;
  };
  const Scale scales[] = {{100, 10}, {1000, 3}, {5000, 1}};

  std::printf("%8s %14s %14s %9s %12s %12s\n", "n", "uncached ms/q",
              "cached ms/q", "speedup", "uncached sims", "cached sims");
  bool all_identical = true;
  for (const Scale& scale : scales) {
    const RunResult uncached =
        RunScenario(scale.n, scale.quanta, /*cached=*/false);
    const RunResult paired =
        RunScenario(scale.n, scale.quanta, /*cached=*/true);
    if (!TracesIdentical(uncached, paired)) {
      std::fprintf(stderr,
                   "FAIL: cached and uncached estimate traces differ at "
                   "n=%d — the cache must be exact\n",
                   scale.n);
      all_identical = false;
    }
    // Time the cached path over a longer run for a stable figure.
    const RunResult cached = RunScenario(scale.n, 50, /*cached=*/true);
    std::printf("%8d %14.3f %14.3f %8.1fx %12llu %12llu\n", scale.n,
                uncached.ms_per_quantum, cached.ms_per_quantum,
                uncached.ms_per_quantum /
                    (cached.ms_per_quantum > 0.0 ? cached.ms_per_quantum
                                                 : 1e-9),
                static_cast<unsigned long long>(uncached.simulations),
                static_cast<unsigned long long>(cached.simulations));
  }
  if (!all_identical) return 1;
  std::printf("\ncached and uncached estimate traces are identical at "
              "every scale\n");
  return 0;
}
