// Figure 10: adaptivity to a wrong arrival-rate belief
// (Section 5.2.3, last part).
//
// True lambda = 0.03; the multi-query PI believes lambda' = 0.04 or
// 0.05. For the last-finishing query in one typical run, the estimated
// remaining time is traced over time. Paper shape: the estimate starts
// off (the bigger |lambda' - lambda|, the worse) and converges to the
// actual remaining time as the query nears completion — "the
// multi-query PI is adaptive and can correct its own errors".
//
// We trace both a static belief (exactly the paper's setup: the PI
// keeps using lambda' but its state-refresh corrects the estimate) and
// an adaptive future model that also learns lambda from observed
// arrivals.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "pi/multi_query_pi.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "workload/arrival_schedule.h"

using namespace mqpi;

namespace {

struct Trace {
  std::vector<double> times;
  std::vector<double> estimates;
  std::vector<double> adaptive_estimates;
  double finish = 0.0;
};

Trace RunOnce(bench::WorkloadFixture* fixture, double lambda,
              double lambda_used, double rate, std::uint64_t seed) {
  Rng rng(seed);
  sched::RdbmsOptions options;
  options.processing_rate = rate;
  options.max_concurrent = 10;
  options.quantum = 0.5;
  options.cost_model.noise_sigma = 0.25;
  options.cost_model.noise_seed = rng.Next();
  sched::Rdbms db(&fixture->catalog, options);
  sim::SimulationRunner runner(&db);

  storage::BufferManager scratch;
  engine::Planner probe(&fixture->catalog, &scratch, {.noise_sigma = 0.0});
  const double avg_cost = *fixture->workload->AverageTrueCost(&probe);

  QueryId last = kInvalidQueryId;
  double largest = -1.0;
  std::vector<QueryId> initial;
  for (int i = 0; i < 10; ++i) {
    // The paper traces the *last-finishing* query over a long horizon;
    // pin one genuinely large query so the lambda'-induced bias has
    // time to show before the adaptivity corrects it.
    int rank = fixture->workload->SampleRank(&rng);
    double fraction = rng.Uniform(0.0, 0.95);
    if (i == 0) {
      rank = std::max(rank, 12);
      fraction = 0.0;
    }
    const double cost = *fixture->workload->TrueCostOfRank(&probe, rank);
    auto id = runner.SubmitNow(fixture->workload->SpecForRank(rank));
    db.FastForward(*id, fraction * cost);
    initial.push_back(*id);
    if (cost * (1.0 - fraction) > largest) {
      largest = cost * (1.0 - fraction);
      last = *id;
    }
  }
  const double horizon = 400.0 * largest / rate + 2000.0;
  for (const auto& arrival : workload::GeneratePoissonArrivals(
           *fixture->workload, lambda, horizon, &rng)) {
    runner.ScheduleArrival(arrival.time,
                           fixture->workload->SpecForRank(arrival.rank));
  }

  pi::FutureWorkloadModel static_model(
      {.lambda = lambda_used, .avg_cost = avg_cost, .avg_weight = 2.0});
  pi::FutureWorkloadModel adaptive_model(
      {.lambda = lambda_used, .avg_cost = avg_cost, .avg_weight = 2.0},
      /*prior_strength=*/8.0);
  pi::MultiQueryPi static_pi(&db, {}, &static_model);
  pi::MultiQueryPi adaptive_pi(&db, {}, &adaptive_model);

  Trace trace;
  const double sample_interval = 10.0;
  double next_sample = 0.0;
  while (db.info(last)->state != sched::QueryState::kFinished) {
    runner.StepFor(options.quantum);
    static_pi.ObserveStep();
    adaptive_pi.ObserveStep();
    if (db.now() + kTimeEpsilon >= next_sample &&
        db.info(last)->state == sched::QueryState::kRunning) {
      auto e = static_pi.EstimateRemainingTime(last);
      auto a = adaptive_pi.EstimateRemainingTime(last);
      trace.times.push_back(db.now());
      trace.estimates.push_back(e.ok() ? *e : kUnknown);
      trace.adaptive_estimates.push_back(a.ok() ? *a : kUnknown);
      next_sample = db.now() + sample_interval;
    }
  }
  trace.finish = db.info(last)->finish_time;
  return trace;
}

}  // namespace

int main() {
  bench::Banner(
      "Figure 10: multi-query estimate over time under a wrong lambda' "
      "(true lambda = 0.03)",
      "bigger |lambda' - lambda| -> worse initial estimate; converges to "
      "the actual line near completion");

  auto fixture = bench::MakeWorkload(
      {.max_rank = 100, .a = 2.2, .n_scale = 1});
  storage::BufferManager scratch;
  engine::Planner probe(&fixture->catalog, &scratch, {.noise_sigma = 0.0});
  const double rate = 0.07 * *fixture->workload->AverageTrueCost(&probe);

  for (double lambda_used : {0.04, 0.05}) {
    const auto trace =
        RunOnce(fixture.get(), 0.03, lambda_used, rate, bench::BaseSeed());
    sim::SeriesTable table(
        "Figure 10 (lambda' = " + std::to_string(lambda_used) +
            "): estimated remaining time for the last-finishing query",
        "time_s", {"actual_s", "multi_est_static_s", "multi_est_adaptive_s"});
    for (std::size_t i = 0; i < trace.times.size(); ++i) {
      table.AddRow(trace.times[i],
                   {trace.finish - trace.times[i], trace.estimates[i],
                    trace.adaptive_estimates[i]});
    }
    table.PrintText();
    std::printf("\n");
  }
  std::printf("seed=%llu\n",
              static_cast<unsigned long long>(bench::BaseSeed()));
  return 0;
}
