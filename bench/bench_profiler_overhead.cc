// bench_profiler_overhead: the cost of the hot-path profiler.
//
// The profiler's contract mirrors the tracer's: instrumentation left
// compiled into the hot paths (Rdbms::Step, BuildSnapshotLocked, the
// publish hook, delta encode, socket writes) must be effectively free
// while profiling is disabled — a ProfScope constructed with the gate
// off is one relaxed atomic load, no clock read, no registration.
// This bench puts numbers on that, and re-checks the net layer's
// O(1)-publish invariant with both the profiler and the publish-stamp
// ring active (telemetry must not buy observability with per-
// subscriber publish work).
//
// Modes:
//   bench_profiler_overhead              full sweep: disabled /
//                                        enabled / nested scope cost
//                                        and Rdbms::Step off vs on;
//                                        writes
//                                        BENCH_profiler_overhead.json
//   bench_profiler_overhead --perfsmoke  fast CI assertion (ctest
//                                        label "perfsmoke"): a
//                                        disabled scope records
//                                        nothing (counter-based) and
//                                        averages under a generous
//                                        low-ns budget; fan-out
//                                        ops/publish stays byte-
//                                        identical across an 8x
//                                        subscriber spread with the
//                                        profiler enabled and publish
//                                        stamps flowing.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "engine/planner.h"
#include "net/client.h"
#include "net/fanout.h"
#include "net/server.h"
#include "obs/profiler.h"
#include "sched/rdbms.h"
#include "service/pi_service.h"
#include "service/session.h"
#include "storage/catalog.h"

using namespace mqpi;

namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Mean wall ns per ProfScope open+close against `profiler`.
double ScopeNsPerOp(obs::Profiler* profiler, obs::ProfSite* site,
                    int iterations) {
  const std::int64_t t0 = NowNs();
  for (int i = 0; i < iterations; ++i) {
    obs::ProfScope scope(profiler, site);
  }
  const std::int64_t t1 = NowNs();
  return static_cast<double>(t1 - t0) / static_cast<double>(iterations);
}

double NestedScopeNsPerOp(obs::Profiler* profiler, obs::ProfSite* outer,
                          obs::ProfSite* inner, int iterations) {
  const std::int64_t t0 = NowNs();
  for (int i = 0; i < iterations; ++i) {
    obs::ProfScope a(profiler, outer);
    obs::ProfScope b(profiler, inner);
  }
  const std::int64_t t1 = NowNs();
  return static_cast<double>(t1 - t0) / static_cast<double>(iterations);
}

/// Mean wall ns per Rdbms::Step quantum over eight never-finishing
/// queries, with the global profiler set to `enabled` (Step's
/// MQPI_PROF_SITE records into it).
double StepNsPerOp(bool enabled, int iterations) {
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.1;
  options.cost_model.noise_sigma = 0.0;
  sched::Rdbms db(&catalog, options);
  for (int i = 0; i < 8; ++i) {
    (void)db.Submit(engine::QuerySpec::Synthetic(1e12));
  }
  obs::GlobalProfiler()->set_enabled(enabled);
  const std::int64_t t0 = NowNs();
  for (int i = 0; i < iterations; ++i) {
    db.Step(options.quantum);
  }
  const std::int64_t t1 = NowNs();
  obs::GlobalProfiler()->set_enabled(false);
  return static_cast<double>(t1 - t0) / static_cast<double>(iterations);
}

struct FanoutResult {
  double ops_per_publish = 0.0;
  bool stamped = false;           // PublishWallNs served the last seq
  std::uint64_t prof_steps = 0;   // service.step_quantum recordings
};

/// Publishes `quanta` ticks into `subscribers` pool subscribers with
/// the profiler enabled, and reads back the fan-out's per-publish op
/// counter plus evidence that stamping and profiling actually ran.
FanoutResult RunFanout(int subscribers, int quanta) {
  storage::Catalog catalog;
  service::PiServiceOptions options;
  options.rdbms.processing_rate = 100.0;
  options.rdbms.quantum = 0.1;
  options.rdbms.cost_model.noise_sigma = 0.0;
  options.start_ticker = false;
  options.enable_auditor = false;
  options.enable_profiler = true;
  service::PiService service(&catalog, options);

  net::PiServerOptions server_options;
  server_options.pool_threads = 2;
  server_options.subscription.max_queued_frames = 4096;
  server_options.subscription.max_queued_bytes = std::size_t{64} << 20;
  net::PiServer server(&service, server_options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    std::exit(1);
  }

  auto session = service.OpenSession("profiler-bench");
  for (int i = 0; i < 4; ++i) {
    (void)session->Submit(engine::QuerySpec::Synthetic(1e9));
  }
  service.PublishNow();

  std::vector<net::LocalSubscriber> subs;
  subs.reserve(static_cast<std::size_t>(subscribers));
  for (int i = 0; i < subscribers; ++i) {
    subs.emplace_back(server.pool()->Subscribe());
  }
  for (int i = 0; i < quanta; ++i) {
    (void)service.Advance(options.rdbms.quantum);
  }

  FanoutResult result;
  result.ops_per_publish =
      static_cast<double>(server.fanout()->publish_ops()) /
      static_cast<double>(server.fanout()->publishes());
  const std::uint64_t last = service.snapshot()->sequence;
  result.stamped = server.fanout()->PublishWallNs(last) > 0;
  for (const auto& site : obs::GlobalProfiler()->Snapshot()) {
    if (site.name == "service.step_quantum") result.prof_steps = site.count;
  }

  session->Close();
  server.Stop();
  service.Stop();
  obs::GlobalProfiler()->set_enabled(false);
  obs::GlobalProfiler()->Reset();
  return result;
}

int Perfsmoke() {
  bool ok = true;

  // Off means off: a disabled scope must record nothing (exact,
  // counter-based) and cost low single-digit ns — the budget below is
  // ~20x a relaxed load so a loaded CI machine cannot flake it, while
  // an accidental clock read or registration (tens of ns and a lock)
  // still trips it.
  obs::Profiler profiler;  // disabled
  obs::ProfSite* site = profiler.Site("bench.disabled");
  constexpr int kScopeIters = 2'000'000;
  (void)ScopeNsPerOp(&profiler, site, kScopeIters);  // warm up
  const double disabled_ns = ScopeNsPerOp(&profiler, site, kScopeIters);
  if (site->count() != 0) {
    std::fprintf(stderr,
                 "perfsmoke FAIL: disabled scope recorded %llu events\n",
                 static_cast<unsigned long long>(site->count()));
    ok = false;
  }
  if (disabled_ns > 100.0) {
    std::fprintf(stderr,
                 "perfsmoke FAIL: disabled scope costs %.1f ns/op "
                 "(budget 100 ns)\n",
                 disabled_ns);
    ok = false;
  }

  // The O(1)-publish invariant with telemetry on: per-publish fan-out
  // work must be byte-identical across an 8x subscriber spread while
  // the profiler records and the stamp ring serves lookups.
  const FanoutResult small = RunFanout(64, 10);
  const FanoutResult large = RunFanout(512, 10);
  if (small.ops_per_publish != large.ops_per_publish) {
    std::fprintf(stderr,
                 "perfsmoke FAIL: %.3f fan-out ops/publish at 64 "
                 "subscribers vs %.3f at 512 with profiling on\n",
                 small.ops_per_publish, large.ops_per_publish);
    ok = false;
  }
  if (!small.stamped || !large.stamped) {
    std::fprintf(stderr, "perfsmoke FAIL: publish stamp missing\n");
    ok = false;
  }
  if (small.prof_steps == 0 || large.prof_steps == 0) {
    std::fprintf(stderr,
                 "perfsmoke FAIL: profiler recorded no step quanta — "
                 "the invariant was not tested with profiling on\n");
    ok = false;
  }
  if (!ok) return 1;
  std::printf(
      "perfsmoke OK: disabled scope %.1f ns/op, 0 events recorded; "
      "%.3f fan-out ops/publish at both 64 and 512 subscribers with "
      "profiling on (%llu + %llu quanta profiled, stamps served)\n",
      disabled_ns, large.ops_per_publish,
      static_cast<unsigned long long>(small.prof_steps),
      static_cast<unsigned long long>(large.prof_steps));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--perfsmoke") == 0) {
    return Perfsmoke();
  }

  std::printf(
      "profiler overhead: scoped hot-path accounting must be ~free "
      "while disabled\n(one relaxed load per scope) and cheap enough "
      "to leave enabled in production.\n\n");

  constexpr int kScopeIters = 5'000'000;
  obs::Profiler off;
  obs::ProfSite* off_site = off.Site("bench.scope");
  (void)ScopeNsPerOp(&off, off_site, kScopeIters);  // warm up
  const double disabled_ns = ScopeNsPerOp(&off, off_site, kScopeIters);

  obs::Profiler on;
  on.set_enabled(true);
  obs::ProfSite* on_site = on.Site("bench.scope");
  const double enabled_ns = ScopeNsPerOp(&on, on_site, kScopeIters);
  obs::ProfSite* outer = on.Site("bench.outer");
  obs::ProfSite* inner = on.Site("bench.inner");
  const double nested_ns =
      NestedScopeNsPerOp(&on, outer, inner, kScopeIters / 2);

  constexpr int kStepIters = 2000;
  const double step_off_ns = StepNsPerOp(false, kStepIters);
  const double step_on_ns = StepNsPerOp(true, kStepIters);
  const double step_delta_pct =
      100.0 * (step_on_ns - step_off_ns) / step_off_ns;

  std::printf("%-34s %12.1f ns/op\n", "ProfScope, disabled", disabled_ns);
  std::printf("%-34s %12.1f ns/op\n", "ProfScope, enabled", enabled_ns);
  std::printf("%-34s %12.1f ns/op (outer+inner)\n",
              "nested ProfScope pair, enabled", nested_ns);
  std::printf("%-34s %12.1f ns/op\n", "Rdbms::Step, profiler off",
              step_off_ns);
  std::printf("%-34s %12.1f ns/op (%+.2f%%)\n", "Rdbms::Step, profiler on",
              step_on_ns, step_delta_pct);

  std::FILE* json = std::fopen("BENCH_profiler_overhead.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_profiler_overhead.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"profiler_overhead\",\n"
               "  \"unit\": \"ns/op\",\n  \"results\": [\n"
               "    {\"case\": \"scope_disabled\", \"ns_per_op\": %.2f},\n"
               "    {\"case\": \"scope_enabled\", \"ns_per_op\": %.2f},\n"
               "    {\"case\": \"nested_pair_enabled\", \"ns_per_op\": "
               "%.2f},\n"
               "    {\"case\": \"rdbms_step_profiler_off\", \"ns_per_op\": "
               "%.2f},\n"
               "    {\"case\": \"rdbms_step_profiler_on\", \"ns_per_op\": "
               "%.2f, \"delta_pct\": %.2f}\n  ]\n}\n",
               disabled_ns, enabled_ns, nested_ns, step_off_ns, step_on_ns,
               step_delta_pct);
  std::fclose(json);
  std::printf("\nwrote BENCH_profiler_overhead.json\n");
  return 0;
}
