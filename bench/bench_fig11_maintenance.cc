// Figure 11: the scheduled maintenance problem (Section 5.3),
// Case 2 — unfinished work = total cost of every aborted query.
//
// Steady state: ten Zipf(2.2) queries are always running (a finished
// query is immediately replaced). At a random instant rt the DBA
// schedules maintenance t seconds later and one of three policies runs:
//   no PI      - O1+O2: stop admissions, abort whatever is unfinished
//                at the deadline;
//   single PI  - O1+O2'+O3: also abort, at rt, every query whose
//                c/s estimate says it cannot finish in time;
//   multi PI   - O1+O2'+O3 with the Section 3.3 greedy knapsack.
// A fourth curve is the theoretical limit: the exact knapsack computed
// from true (run-to-completion) costs.
//
// Paper shape: multi-PI has the least unfinished work for all
// t < t_finish and reaches zero at t = t_finish; the single-PI method
// aborts ~2/3 of the work unnecessarily even at t = t_finish; no-PI is
// between them except at very small t; multi-PI tracks the theoretical
// limit within a few percent on average.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "pi/pi_manager.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "wlm/maintenance.h"
#include "wlm/wlm_advisor.h"

using namespace mqpi;

namespace {

struct SteadyState {
  std::unique_ptr<sched::Rdbms> db;
  std::unique_ptr<pi::PiManager> pis;
  std::map<QueryId, int> rank_of;
  std::vector<sched::QueryInfo> running;  // snapshot at rt
  double total_work = 0.0;                // TW: sum of true total costs
  SimTime t_finish = 0.0;                 // no-interruption quiescent span
  SimTime rt = 0.0;
  // Listener state: must live as long as the Rdbms, which keeps the
  // completion listener registered past WarmUp's return.
  std::vector<int> stream;
  std::size_t next_rank = 0;
  bool replacing = true;
  int completions = 0;
  bench::WorkloadFixture* fixture = nullptr;
};

/// Replays the deterministic warmup for one run seed and stops at rt.
std::unique_ptr<SteadyState> WarmUp(bench::WorkloadFixture* fixture,
                                    engine::Planner* probe, double rate,
                                    std::uint64_t seed) {
  auto state = std::make_unique<SteadyState>();
  SteadyState* s = state.get();
  s->fixture = fixture;
  Rng rng(seed);

  sched::RdbmsOptions options;
  options.processing_rate = rate;
  options.max_concurrent = 10;
  options.quantum = 0.5;
  options.cost_model.noise_sigma = 0.10;
  options.cost_model.noise_seed = rng.Next();
  s->db = std::make_unique<sched::Rdbms>(&fixture->catalog, options);
  s->pis = std::make_unique<pi::PiManager>(
      s->db.get(), pi::PiManagerOptions{.sample_interval = 1e12});

  // Replacement stream: when a query finishes, the next rank arrives.
  for (int i = 0; i < 60; ++i) {
    s->stream.push_back(fixture->workload->SampleRank(&rng));
  }
  s->db->AddCompletionListener([s](const sched::QueryInfo&) {
    ++s->completions;
    if (!s->replacing || s->next_rank >= s->stream.size()) return;
    const int rank = s->stream[s->next_rank++];
    auto id = s->db->Submit(s->fixture->workload->SpecForRank(rank));
    if (id.ok()) {
      s->rank_of[*id] = rank;
      s->pis->Track(*id);
    }
  });

  for (int i = 0; i < 10; ++i) {
    const int rank = s->stream[s->next_rank++];
    auto id = s->db->Submit(fixture->workload->SpecForRank(rank));
    s->rank_of[*id] = rank;
    s->pis->Track(*id);
    // Random initial execution points, as in Section 5.2.
    const double cost = *fixture->workload->TrueCostOfRank(probe, rank);
    s->db->FastForward(*id, rng.Uniform(0.0, 0.9) * cost);
  }

  // Run until a "random" number of completions has occurred: this is rt.
  const int target = 6 + static_cast<int>(rng.UniformInt(0, 6));
  while (s->completions < target) {
    s->db->Step(options.quantum);
    s->pis->AfterStep();
  }
  s->replacing = false;
  s->rt = s->db->now();

  s->running = s->db->RunningQueries();
  for (const auto& info : s->running) {
    const double total =
        *fixture->workload->TrueCostOfRank(probe, s->rank_of[info.id]);
    s->total_work += total;
    s->t_finish += (total - info.completed_work) / rate;
  }
  return state;
}

}  // namespace

int main() {
  bench::Banner(
      "Figure 11: unfinished work UW/TW vs t/t_finish (maintenance, "
      "Case 2)",
      "multi-PI lowest and 0 at t=t_finish; single-PI ~0.67 even at "
      "t=t_finish; no-PI in between; multi-PI near the theoretical limit");

  auto fixture = bench::MakeWorkload(
      {.max_rank = 100, .a = 2.2, .n_scale = 1});
  storage::BufferManager scratch;
  engine::Planner probe(&fixture->catalog, &scratch, {.noise_sigma = 0.0});
  const double avg_cost = *fixture->workload->AverageTrueCost(&probe);
  const double rate = 0.07 * avg_cost;
  const int runs = bench::NumRuns(10);
  std::printf("C = %.1f U/s, %d runs, seed=%llu\n\n", rate, runs,
              static_cast<unsigned long long>(bench::BaseSeed()));

  const std::vector<double> fractions{0.1, 0.2, 0.3, 0.4, 0.5,
                                      0.6, 0.7, 0.8, 0.9, 1.0};
  sim::SeriesTable fig11(
      "Figure 11: UW/TW for the three methods + theoretical limit",
      "t_over_tfinish",
      {"no_pi", "single_pi", "multi_pi", "theoretical_limit"});

  std::vector<RunningStats> stats(4 * fractions.size());
  std::vector<RunningStats> case1_stats(fractions.size());
  for (int run = 0; run < runs; ++run) {
    const std::uint64_t seed =
        bench::BaseSeed() + 104729ull * static_cast<std::uint64_t>(run);

    // t_finish is *measured*, as the paper defines it: the remaining
    // execution time of the 10 queries under the no-interruption
    // condition. One dedicated replay per run; the replay also provides
    // the exact (e_i, c_i) state at rt for the theoretical limit.
    double t_finish = 0.0;
    std::vector<wlm::MaintenanceQuery> truth;
    double total_work = 0.0;
    {
      auto state_ptr = WarmUp(fixture.get(), &probe, rate, seed);
      auto& state = *state_ptr;
      for (const auto& info : state.running) {
        const double total = *fixture->workload->TrueCostOfRank(
            &probe, state.rank_of[info.id]);
        truth.push_back(wlm::MaintenanceQuery{
            info.id, info.completed_work, total - info.completed_work});
      }
      total_work = state.total_work;
      state.db->SetAdmissionOpen(false);
      state.db->RunUntilIdle();
      t_finish = state.db->now() - state.rt;
    }

    for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
      const double deadline = fractions[fi] * t_finish;
      // Theoretical limit: exact knapsack on true run-to-completion
      // figures.
      {
        auto plan = wlm::MaintenancePlanner::PlanOptimal(
            truth, deadline, rate, wlm::LossMetric::kTotalCost);
        stats[4 * fi + 3].Observe(plan.ok()
                                      ? plan->lost_work / total_work
                                      : 1.0);
        // Case 1 oracle alongside (lost work = completed work only).
        auto plan1 = wlm::MaintenancePlanner::PlanOptimal(
            truth, deadline, rate, wlm::LossMetric::kCompletedWork);
        double completed_total = 0.0;
        for (const auto& q : truth) completed_total += q.completed;
        case1_stats[fi].Observe(
            plan1.ok() && completed_total > 0.0
                ? plan1->lost_work / completed_total
                : 0.0);
      }
      // The three live methods.
      const wlm::MaintenanceMethod methods[] = {
          wlm::MaintenanceMethod::kNoPi, wlm::MaintenanceMethod::kSinglePi,
          wlm::MaintenanceMethod::kMultiPi};
      for (int mi = 0; mi < 3; ++mi) {
        auto state_ptr = WarmUp(fixture.get(), &probe, rate, seed);
        auto& state = *state_ptr;
        wlm::WlmAdvisor advisor(state.db.get());
        auto plan = advisor.PrepareMaintenance(
            deadline, wlm::LossMetric::kTotalCost, methods[mi],
            state.pis.get());
        if (!plan.ok()) {
          std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
          return 1;
        }
        // Let survivors run until the maintenance instant, then abort
        // whatever has not finished (O2/O3 deadline action).
        state.db->RunUntilIdle(state.rt + deadline);
        auto late = advisor.AbortAllUnfinished();
        double unfinished = 0.0;
        for (QueryId id : plan->abort_now) {
          unfinished +=
              *fixture->workload->TrueCostOfRank(&probe, state.rank_of[id]);
        }
        for (const auto& info : late) {
          unfinished +=
              *fixture->workload->TrueCostOfRank(&probe,
                                                 state.rank_of[info.id]);
        }
        stats[4 * fi + static_cast<std::size_t>(mi)].Observe(
            unfinished / state.total_work);
      }
    }
    std::printf("run %d/%d done\n", run + 1, runs);
  }

  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    fig11.AddRow(fractions[fi],
                 {stats[4 * fi + 0].mean(), stats[4 * fi + 1].mean(),
                  stats[4 * fi + 2].mean(), stats[4 * fi + 3].mean()});
  }
  std::printf("\n");
  bench::PrintTable(fig11);

  // Case 1 (lost completed work) — the paper discusses it alongside
  // Case 2 but only plots Case 2; we report the oracle curve so both
  // loss metrics are covered.
  sim::SeriesTable case1(
      "Case 1 (lost completed work / total completed), exact-information "
      "planner",
      "t_over_tfinish", {"lost_completed_frac"});
  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    case1.AddRow(fractions[fi], {case1_stats[fi].mean()});
  }
  std::printf("\n");
  case1.PrintText();

  std::printf(
      "\nReduction vs no-PI at t=0.5*t_finish: %.0f%%; vs single-PI: "
      "%.0f%% (paper: 18-44%% and 15-67%%)\n",
      100.0 * (1.0 - stats[4 * 4 + 2].mean() /
                         std::max(1e-9, stats[4 * 4 + 0].mean())),
      100.0 * (1.0 - stats[4 * 4 + 2].mean() /
                         std::max(1e-9, stats[4 * 4 + 1].mean())));
  return 0;
}
