// Section 2.2 / 3 complexity claims, measured with google-benchmark.
//
// The paper states O(n log n) time and O(n) space for the stage
// computation and for the victim-selection algorithms, and O(n) for the
// equal-priority fast path. Each benchmark sweeps n; the reported
// per-item complexity trend makes the asymptotics visible.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "pi/analytic_simulator.h"
#include "pi/multi_query_pi.h"
#include "sched/rdbms.h"
#include "storage/catalog.h"
#include "pi/stage_profile.h"
#include "wlm/maintenance.h"
#include "wlm/speedup.h"

namespace {

using mqpi::QueryId;
using mqpi::Rng;
using mqpi::pi::QueryLoad;

std::vector<QueryLoad> MakeLoads(int n, bool uniform_weights) {
  Rng rng(42);
  std::vector<QueryLoad> loads;
  loads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    loads.push_back(QueryLoad{static_cast<QueryId>(i + 1),
                              rng.Uniform(1.0, 1000.0),
                              uniform_weights ? 1.0 : rng.Uniform(0.5, 8.0)});
  }
  return loads;
}

void BM_StageProfileCompute(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto loads = MakeLoads(n, /*uniform_weights=*/false);
  for (auto _ : state) {
    auto profile = mqpi::pi::StageProfile::Compute(loads, 1000.0);
    benchmark::DoNotOptimize(profile);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_StageProfileCompute)
    ->RangeMultiplier(4)
    ->Range(16, 65536)
    ->Complexity(benchmark::oNLogN);

void BM_AnalyticSimulatorForecast(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto loads = MakeLoads(n, false);
  mqpi::pi::AnalyticModelOptions options;
  options.rate = 1000.0;
  for (auto _ : state) {
    auto forecast =
        mqpi::pi::AnalyticSimulator::Forecast(loads, {}, {}, options);
    benchmark::DoNotOptimize(forecast);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_AnalyticSimulatorForecast)
    ->RangeMultiplier(4)
    ->Range(16, 16384)
    ->Complexity(benchmark::oNLogN);

void BM_AnalyticSimulatorWithArrivals(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto loads = MakeLoads(n, false);
  std::vector<mqpi::pi::FutureArrival> arrivals;
  Rng rng(7);
  for (int i = 0; i < n; ++i) {
    arrivals.push_back(mqpi::pi::FutureArrival{
        rng.Uniform(0.0, 100.0), rng.Uniform(1.0, 500.0), 1.0,
        static_cast<QueryId>(n + i + 1)});
  }
  mqpi::pi::AnalyticModelOptions options;
  options.rate = 1000.0;
  for (auto _ : state) {
    auto forecast =
        mqpi::pi::AnalyticSimulator::Forecast(loads, {}, arrivals, options);
    benchmark::DoNotOptimize(forecast);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_AnalyticSimulatorWithArrivals)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity(benchmark::oNLogN);

void BM_SingleQuerySpeedupChoose(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto loads = MakeLoads(n, false);
  const QueryId target = loads[static_cast<std::size_t>(n) / 2].id;
  for (auto _ : state) {
    auto choice =
        mqpi::wlm::SingleQuerySpeedup::ChooseVictims(loads, target, 1, 1000.0);
    benchmark::DoNotOptimize(choice);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SingleQuerySpeedupChoose)
    ->RangeMultiplier(4)
    ->Range(16, 65536)
    ->Complexity(benchmark::oNLogN);

void BM_EqualPriorityFastPath(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto loads = MakeLoads(n, /*uniform_weights=*/true);
  const QueryId target = loads[static_cast<std::size_t>(n) / 2].id;
  for (auto _ : state) {
    auto victim = mqpi::wlm::SingleQuerySpeedup::ChooseVictimEqualPriority(
        loads, target);
    benchmark::DoNotOptimize(victim);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EqualPriorityFastPath)
    ->RangeMultiplier(4)
    ->Range(16, 65536)
    ->Complexity(benchmark::oN);

void BM_MultiQuerySpeedupChoose(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto loads = MakeLoads(n, false);
  for (auto _ : state) {
    auto choice = mqpi::wlm::MultiQuerySpeedup::ChooseVictim(loads, 1000.0);
    benchmark::DoNotOptimize(choice);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MultiQuerySpeedupChoose)
    ->RangeMultiplier(4)
    ->Range(16, 65536)
    ->Complexity(benchmark::oNLogN);

void BM_MaintenanceGreedy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(11);
  std::vector<mqpi::wlm::MaintenanceQuery> queries;
  for (int i = 0; i < n; ++i) {
    queries.push_back(mqpi::wlm::MaintenanceQuery{
        static_cast<QueryId>(i + 1), rng.Uniform(0.0, 500.0),
        rng.Uniform(1.0, 500.0)});
  }
  for (auto _ : state) {
    auto plan = mqpi::wlm::MaintenancePlanner::PlanGreedy(
        queries, 10.0, 1000.0, mqpi::wlm::LossMetric::kTotalCost);
    benchmark::DoNotOptimize(plan);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MaintenanceGreedy)
    ->RangeMultiplier(4)
    ->Range(16, 65536)
    ->Complexity(benchmark::oNLogN);

// Section 4.3: "the effective n ... is likely to be small and the
// computational cost will be small" — measure the live cost of one
// full multi-query forecast over n running queries on a real Rdbms.
void BM_LiveForecastAll(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  static mqpi::storage::Catalog catalog;  // shared across iterations
  mqpi::sched::RdbmsOptions options;
  options.processing_rate = 1e9;  // keep queries alive regardless of n
  options.cost_model.noise_sigma = 0.0;
  mqpi::sched::Rdbms db(&catalog, options);
  Rng rng(5);
  for (int i = 0; i < n; ++i) {
    benchmark::DoNotOptimize(db.Submit(
        mqpi::engine::QuerySpec::Synthetic(rng.Uniform(1e6, 1e9))));
  }
  mqpi::pi::MultiQueryPi pi(&db);
  for (auto _ : state) {
    auto forecast = pi.ForecastAll();
    benchmark::DoNotOptimize(forecast);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LiveForecastAll)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity(benchmark::oNLogN);

}  // namespace

BENCHMARK_MAIN();
