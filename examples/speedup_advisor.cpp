// Query speed-up walkthrough (paper Sections 3.1 and 3.2).
//
// A DBA wants one target query to finish sooner and asks the advisor
// which running queries to block. The example shows:
//  * why "block the heaviest consumer" can be a bad idea (the paper's
//    motivating observation: the heavy query may be about to finish),
//  * the Section 3.1 optimal choice and its predicted vs actual gain,
//  * the Section 3.2 choice that helps everyone else at once.

#include <cstdio>
#include <vector>

#include "pi/stage_profile.h"
#include "sched/rdbms.h"
#include "storage/catalog.h"
#include "wlm/speedup.h"
#include "wlm/wlm_advisor.h"

using namespace mqpi;

namespace {

struct Scenario {
  std::vector<engine::QuerySpec> specs;
  std::vector<Priority> priorities;
};

/// Builds a fresh system with the scenario's queries running.
std::unique_ptr<sched::Rdbms> Start(const storage::Catalog* catalog,
                                    const Scenario& scenario,
                                    std::vector<QueryId>* ids) {
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.05;
  options.cost_model.noise_sigma = 0.0;
  auto db = std::make_unique<sched::Rdbms>(catalog, options);
  ids->clear();
  for (std::size_t i = 0; i < scenario.specs.size(); ++i) {
    auto id = db->Submit(scenario.specs[i], scenario.priorities[i]);
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      std::exit(1);
    }
    ids->push_back(*id);
  }
  return db;
}

}  // namespace

int main() {
  storage::Catalog catalog;

  // The motivating trap: the heaviest consumer (high-priority, eating
  // most of the machine) is nearly done; blocking it barely helps.
  Scenario scenario;
  scenario.specs = {
      engine::QuerySpec::Synthetic(600.0),   // target
      engine::QuerySpec::Synthetic(60.0),    // heavy but nearly done
      engine::QuerySpec::Synthetic(500.0),   // the right victim
      engine::QuerySpec::Synthetic(400.0),
  };
  scenario.priorities = {Priority::kNormal, Priority::kCritical,
                         Priority::kNormal, Priority::kNormal};

  std::vector<QueryId> ids;
  {
    auto db = Start(&catalog, scenario, &ids);
    db->RunUntilIdle();
    std::printf("Baseline (nothing blocked): target finishes at %.2f s\n",
                db->info(ids[0])->finish_time);
  }
  {
    auto db = Start(&catalog, scenario, &ids);
    db->Block(ids[1]);  // naive: block the heaviest consumer
    db->RunUntilIdle();
    std::printf("Blocking the heaviest consumer (about to finish): "
                "%.2f s\n",
                db->info(ids[0])->finish_time);
  }
  {
    auto db = Start(&catalog, scenario, &ids);
    wlm::WlmAdvisor advisor(db.get());
    auto choice = advisor.SpeedUpQuery(ids[0], 1);
    if (!choice.ok()) {
      std::fprintf(stderr, "%s\n", choice.status().ToString().c_str());
      return 1;
    }
    db->RunUntilIdle();
    std::printf("Section 3.1 choice (victim %llu, predicted saving "
                "%.2f s): %.2f s\n",
                static_cast<unsigned long long>(choice->victims[0]),
                choice->time_saved, db->info(ids[0])->finish_time);
  }

  // Section 3.2: help everyone else instead of a single target.
  {
    auto db = Start(&catalog, scenario, &ids);
    wlm::WlmAdvisor advisor(db.get());
    auto choice = advisor.SpeedUpOthers();
    if (!choice.ok()) {
      std::fprintf(stderr, "%s\n", choice.status().ToString().c_str());
      return 1;
    }
    db->RunUntilIdle();
    double total = 0.0;
    for (QueryId id : ids) {
      if (id == choice->victim) continue;
      total += db->info(id)->finish_time;
    }
    std::printf("\nSection 3.2: blocking query %llu improves the others' "
                "total response time by a predicted %.2f s "
                "(their total finish-time sum is now %.2f s)\n",
                static_cast<unsigned long long>(choice->victim),
                choice->total_response_improvement, total);
  }

  // Show the stage profile the algorithms reason over.
  std::printf("\nStage profile of the scenario (costs/weights at t=0):\n");
  std::vector<pi::QueryLoad> loads{{1, 600.0, 2.0},
                                   {2, 60.0, 8.0},
                                   {3, 500.0, 2.0},
                                   {4, 400.0, 2.0}};
  auto profile = pi::StageProfile::Compute(loads, 100.0);
  for (std::size_t i = 0; i < profile->num_queries(); ++i) {
    std::printf("  stage %zu: query %llu finishes at %.2f s\n", i + 1,
                static_cast<unsigned long long>(
                    profile->finish_order()[i].id),
                profile->remaining_times()[i]);
  }
  return 0;
}
