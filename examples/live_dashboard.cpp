// Live progress dashboard, served concurrently: a PiService ticker
// thread executes the workload in (scaled) real time while this main
// thread is a pure *reader* — it polls the published ProgressSnapshot
// and renders per-query progress bars, both ETAs side by side, queue
// positions, and the forecast quiescent time, without ever touching the
// engine lock. Extra traffic arrives mid-run from a replayed Poisson
// schedule, exactly the §5.2.3 setup but flowing through a session.
// Runtime tracing is on for the whole run; the process exits with the
// estimate-accuracy report, the service metrics registry, and a Chrome
// trace file (mqpi_dashboard_trace.json — open in chrome://tracing or
// https://ui.perfetto.dev).

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "service/pi_service.h"
#include "service/session.h"
#include "service/traffic.h"
#include "storage/tpcr_gen.h"
#include "workload/arrival_schedule.h"
#include "workload/zipf_workload.h"

using namespace mqpi;

namespace {

std::string Bar(double fraction, int width) {
  if (fraction < 0.0) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::string bar(static_cast<std::size_t>(filled), '#');
  bar.append(static_cast<std::size_t>(width - filled), '.');
  return bar;
}

std::string Eta(double seconds) {
  if (seconds == kUnknown) return "?";
  if (seconds >= kInfiniteTime) return "inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  return buf;
}

void RenderAccuracy(const obs::EstimateAuditor& auditor) {
  const obs::AccuracyAggregate agg = auditor.Aggregate();
  if (agg.queries_scored == 0) return;
  auto pct = [](double v) -> std::string {
    if (v == kUnknown) return "?";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f%%", 100.0 * v);
    return buf;
  };
  std::printf("accuracy over %llu finished: single MAPE %s | multi MAPE %s "
              "| live %zu\n",
              static_cast<unsigned long long>(agg.queries_scored),
              pct(agg.mean_mape_single).c_str(),
              pct(agg.mean_mape_multi).c_str(), auditor.live_queries());
}

void Render(const service::ProgressSnapshot& snap) {
  std::printf("\n=== snapshot #%llu | t = %5.1f s | running %d | "
              "queued %d | measured rate %.0f U/s ===\n",
              static_cast<unsigned long long>(snap.sequence), snap.sim_time,
              snap.num_running, snap.num_queued, snap.measured_rate);
  std::printf("%-4s %-9s %-26s %8s %10s %10s %6s\n", "id", "state",
              "progress", "done%", "single ETA", "multi ETA", "queue");
  for (const auto& q : snap.queries) {
    if (q.terminal()) continue;
    const std::string queue_pos =
        q.queue_position >= 0 ? "#" + std::to_string(q.queue_position) : "-";
    std::printf("%-4llu %-9s [%s] %7.1f%% %10s %10s %6s\n",
                static_cast<unsigned long long>(q.id),
                std::string(sched::QueryStateName(q.state)).c_str(),
                Bar(q.fraction_done, 24).c_str(), 100.0 * q.fraction_done,
                Eta(q.eta_single).c_str(), Eta(q.eta_multi).c_str(),
                queue_pos.c_str());
  }
  if (snap.quiescent_eta != kUnknown) {
    std::printf("system quiescent in ~%s\n", Eta(snap.quiescent_eta).c_str());
  }
}

}  // namespace

int main() {
  storage::Catalog catalog;
  storage::TpcrGenerator generator(
      {.num_part_keys = 4000, .matches_per_key = 30, .seed = 21});
  workload::ZipfWorkload workload(&catalog, &generator,
                                  {.max_rank = 12, .a = 1.5, .n_scale = 8});
  if (auto s = workload.MaterializeTables(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  service::PiServiceOptions options;
  options.rdbms.processing_rate = 800.0;
  options.rdbms.quantum = 0.1;
  options.rdbms.max_concurrent = 4;  // small MPL: show the admission queue
  options.rdbms.cost_model.noise_sigma = 0.2;
  options.future_prior = {.lambda = 0.1, .avg_cost = 2000.0};
  options.future_prior_strength = 4.0;  // adapt as real arrivals land
  options.time_scale = 60.0;  // 60 simulated seconds per wall second
  service::PiService service(&catalog, options);
  service.tracer()->set_enabled(true);

  auto session = service.OpenSession("dashboard-loadgen");
  Rng rng(99);
  for (int i = 0; i < 7; ++i) {
    auto id = session->Submit(workload.SampleSpec(&rng));
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return 1;
    }
  }
  // Mid-run traffic: a Poisson schedule replayed through the session.
  const auto schedule =
      workload::GeneratePoissonArrivals(workload, /*lambda=*/0.1,
                                        /*horizon=*/60.0, &rng);
  if (auto s = service::ReplaySchedule(session.get(), workload, schedule);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("7 queries submitted + %zu scheduled arrivals; ticker at "
              "%.0fx real time\n",
              schedule.size(), options.time_scale);

  // Pure reader loop: snapshot polls only, engine never locked.
  for (int frame = 0; frame < 60 && !service.Idle(); ++frame) {
    Render(*service.snapshot());
    RenderAccuracy(*service.auditor());
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
  service.WaitUntilIdle(/*timeout_seconds=*/120.0);
  Render(*service.snapshot());
  session->Close();
  service.Stop();

  std::printf("\nAll queries finished at t = %.1f s.\n\n%s\nMetrics:\n\n%s",
              service.snapshot()->sim_time,
              service.auditor()->RenderText().c_str(),
              service.metrics()->TextDump().c_str());

  const std::string trace_path = "mqpi_dashboard_trace.json";
  if (auto s = service.tracer()->WriteChromeTrace(trace_path); s.ok()) {
    std::printf("\ntrace: %zu events -> %s (open in chrome://tracing)\n",
                service.tracer()->Events().size(), trace_path.c_str());
  } else {
    std::fprintf(stderr, "trace export failed: %s\n", s.ToString().c_str());
  }
  return 0;
}
