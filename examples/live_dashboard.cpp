// Live progress dashboard: the GUI-tool use of progress indicators the
// prior work proposed, upgraded with multi-query ETAs (this paper's
// contribution). Renders a text dashboard every few simulated seconds:
// per-query progress bars, the single-query and multi-query ETAs side
// by side, and the PI's forecast of the system quiescent time.

#include <cstdio>
#include <string>

#include "pi/pi_manager.h"
#include "sched/rdbms.h"
#include "sim/runner.h"
#include "storage/tpcr_gen.h"
#include "workload/zipf_workload.h"

using namespace mqpi;

namespace {

std::string Bar(double fraction, int width) {
  if (fraction < 0.0) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::string bar(static_cast<std::size_t>(filled), '#');
  bar.append(static_cast<std::size_t>(width - filled), '.');
  return bar;
}

std::string Eta(double seconds) {
  if (seconds >= kInfiniteTime) return "   ?";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%6.1fs", seconds);
  return buf;
}

}  // namespace

int main() {
  storage::Catalog catalog;
  storage::TpcrGenerator generator(
      {.num_part_keys = 4000, .matches_per_key = 30, .seed = 21});
  workload::ZipfWorkload workload(&catalog, &generator,
                                  {.max_rank = 12, .a = 1.5, .n_scale = 8});
  if (auto s = workload.MaterializeTables(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  sched::RdbmsOptions options;
  options.processing_rate = 800.0;
  options.quantum = 0.1;
  options.max_concurrent = 4;  // small MPL: show the admission queue
  options.cost_model.noise_sigma = 0.2;
  sched::Rdbms db(&catalog, options);
  pi::PiManager pis(&db, {.sample_interval = 1.0,
                          .record_queue_blind_variant = false});
  sim::SimulationRunner runner(&db, &pis);

  Rng rng(99);
  for (int i = 0; i < 7; ++i) {
    auto id = runner.SubmitNow(workload.SampleSpec(&rng));
    if (id.ok()) pis.Track(*id);
  }

  while (!db.Idle()) {
    runner.StepFor(5.0);
    std::printf("\n=== t = %5.1f s | running %d | queued %d | "
                "measured rate %.0f U/s ===\n",
                db.now(), db.num_running(), db.num_queued(),
                pis.multi()->estimated_rate());
    std::printf("%-4s %-9s %-26s %8s %10s %10s\n", "id", "state",
                "progress", "done%", "single ETA", "multi ETA");
    for (const auto& row : pis.Report()) {
      std::printf("%-4llu %-9s [%s] %7.1f%% %10s %10s\n",
                  static_cast<unsigned long long>(row.id),
                  std::string(sched::QueryStateName(row.state)).c_str(),
                  Bar(row.fraction_done, 24).c_str(),
                  100.0 * row.fraction_done,
                  Eta(row.eta_single == kUnknown ? kInfiniteTime
                                                 : row.eta_single)
                      .c_str(),
                  Eta(row.eta_multi == kUnknown ? kInfiniteTime
                                                : row.eta_multi)
                      .c_str());
    }
    auto forecast = pis.multi()->ForecastAll();
    if (forecast.ok()) {
      std::printf("system quiescent in ~%.1f s\n",
                  forecast->quiescent_time());
    }
  }
  std::printf("\nAll queries finished at t = %.1f s.\n", db.now());
  return 0;
}
