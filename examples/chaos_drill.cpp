// Chaos drill: batter a live PiService with a seeded FaultInjector and
// watch the graceful-degradation machinery respond — stale-tagged
// snapshots while publication is down, rate-floored and last-known-good
// estimates while the engine misbehaves, overload shedding at the
// admission queue, and per-point fault accounting in the metrics dump.
//
// Demonstrates the robustness API path:
//   FaultInjector -> PiServiceOptions::fault -> Advance -> snapshot
//   staleness/degraded tags -> fault.* / pi.degraded_estimates metrics.
//
// Everything is deterministic: same seed, same drill, same printout.

#include <cstdio>
#include <string>

#include "engine/planner.h"
#include "fault/fault_injector.h"
#include "service/pi_service.h"
#include "service/session.h"
#include "storage/catalog.h"

using namespace mqpi;

namespace {

void PrintSnapshot(const service::SnapshotPtr& snapshot) {
  std::printf("t=%6.1fs seq=%-4llu age=%d%s  run=%d queue=%d rate=%.1f\n",
              snapshot->sim_time,
              static_cast<unsigned long long>(snapshot->sequence),
              snapshot->age_quanta, snapshot->degraded ? " DEGRADED" : "",
              snapshot->num_running, snapshot->num_queued,
              snapshot->measured_rate);
  for (const auto& row : snapshot->queries) {
    if (row.terminal()) continue;
    std::printf("    q%-3llu %-8s %5.1f%%  eta_multi=%-10.1f%s\n",
                static_cast<unsigned long long>(row.id),
                std::string(sched::QueryStateName(row.state)).c_str(),
                100.0 * row.fraction_done, row.eta_multi,
                row.degraded ? "  [degraded]" : "");
  }
}

}  // namespace

int main() {
  storage::Catalog catalog;
  fault::FaultInjector injector(/*seed=*/2026);

  service::PiServiceOptions options;
  options.rdbms.processing_rate = 100.0;
  options.rdbms.quantum = 0.1;
  options.rdbms.max_concurrent = 2;
  options.start_ticker = false;  // manual mode: a deterministic drill
  options.fault = &injector;
  options.max_queued_queries = 3;  // shed floods instead of drowning
  options.stale_snapshot_quanta = 3;
  service::PiService service(&catalog, options);
  auto session = service.OpenSession("drill");

  // Phase 1: healthy baseline.
  std::printf("--- phase 1: healthy baseline ---\n");
  for (int i = 0; i < 5; ++i) {
    (void)session->Submit(engine::QuerySpec::Synthetic(150.0 + 50.0 * i));
  }
  (void)service.Advance(2.0);
  PrintSnapshot(service.snapshot());

  // Phase 2: publication outage — snapshots freeze but age honestly.
  std::printf("--- phase 2: publication outage ---\n");
  injector.ArmProbability(fault::kServicePublishDelay, 1.0);
  (void)service.Advance(0.5);
  PrintSnapshot(service.snapshot());
  injector.Disarm(fault::kServicePublishDelay);
  (void)service.Advance(0.1);
  std::printf("recovered: age=%d\n", service.snapshot()->age_quanta);

  // Phase 3: engine chaos — rate collapse + spurious aborts. Estimates
  // stay finite (rate floor, last-known-good carry).
  std::printf("--- phase 3: engine chaos ---\n");
  injector.ArmProbability(fault::kSchedRateCollapse, 0.5, 0.05);
  injector.ArmProbability(fault::kSchedSpuriousAbort, 0.02);
  (void)service.Advance(5.0);
  PrintSnapshot(service.snapshot());

  // Phase 4: overload — the bounded admission queue sheds the flood.
  std::printf("--- phase 4: overload shedding ---\n");
  int shed = 0;
  for (int i = 0; i < 10; ++i) {
    const auto submitted =
        session->Submit(engine::QuerySpec::Synthetic(100.0));
    if (!submitted.ok() && submitted.status().IsResourceExhausted()) ++shed;
  }
  std::printf("10 submits -> %d shed with kResourceExhausted\n", shed);

  // Phase 5: disarm and drain; print what the chaos run injected.
  std::printf("--- phase 5: recovery ---\n");
  injector.DisarmAll();
  service.SetAdmissionOpen(true);
  (void)service.AdvanceUntilIdle(/*deadline=*/10000.0);
  PrintSnapshot(service.snapshot());

  std::printf("\ninjected faults:\n");
  for (const auto& stat : injector.Stats()) {
    std::printf("  %-28s evaluations=%-6llu fires=%llu\n", stat.point,
                static_cast<unsigned long long>(stat.evaluations),
                static_cast<unsigned long long>(stat.fires));
  }
  std::printf("\nservice metrics (degradation excerpt):\n");
  const auto dump = service.metrics()->TextDump();
  for (const char* needle :
       {"service.stale_snapshots", "service.submits_shed",
        "pi.degraded_estimates", "pi.rate_floor_hits", "fault.injected"}) {
    const auto pos = dump.find(needle);
    if (pos == std::string::npos) continue;
    const auto line_start = dump.rfind('\n', pos) + 1;
    const auto line_end = dump.find('\n', pos);
    std::printf("  %s\n",
                dump.substr(line_start, line_end - line_start).c_str());
  }
  return 0;
}
