// Quickstart: build a small TPC-R-style database, run three concurrent
// queries under weighted fair sharing, and watch the single-query and
// multi-query progress indicators estimate their remaining times.
//
// Demonstrates the core API path:
//   TpcrGenerator -> Catalog -> Rdbms -> Submit -> PiManager -> Step.

#include <cstdio>

#include "engine/sql_parser.h"
#include "pi/pi_manager.h"
#include "sched/rdbms.h"
#include "sim/runner.h"
#include "storage/tpcr_gen.h"

using namespace mqpi;

int main() {
  // 1. Generate data: lineitem plus three part tables of growing size.
  storage::Catalog catalog;
  storage::TpcrGenerator generator({.num_part_keys = 2000,
                                    .matches_per_key = 30,
                                    .seed = 42});
  auto check = [](const Status& s) {
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  };
  check(generator.BuildLineitem(&catalog));
  check(generator.BuildPartTable(&catalog, "part_small", 5));
  check(generator.BuildPartTable(&catalog, "part_medium", 15));
  check(generator.BuildPartTable(&catalog, "part_large", 40));

  // 2. Start an RDBMS processing 1000 work units (pages) per second.
  sched::RdbmsOptions options;
  options.processing_rate = 1000.0;
  options.cost_model.noise_sigma = 0.2;  // imprecise statistics
  sched::Rdbms db(&catalog, options);

  // 3. Attach progress indicators and submit the paper's query template
  //    over each part table.
  pi::PiManager pis(&db, {.sample_interval = 2.0});
  sim::SimulationRunner runner(&db, &pis);

  // Queries can be built programmatically (QuerySpec::TpcrPartPrice)
  // or parsed from SQL; this uses the SQL front end.
  auto submit = [&](const std::string& table) {
    auto spec = engine::ParseSql(
        "select * from " + table + " p where p.retailprice * 0.75 > "
        "(select sum(l.extendedprice) / sum(l.quantity) from lineitem l "
        "where l.partkey = p.partkey)");
    check(spec.status());
    auto id = runner.SubmitNow(*spec);
    check(id.status());
    pis.Track(*id);
    return *id;
  };
  const QueryId small = submit("part_small");
  const QueryId medium = submit("part_medium");
  const QueryId large = submit("part_large");

  // EXPLAIN the large query's plan before watching it run.
  auto explain = db.planner()->Explain(
      engine::QuerySpec::TpcrPartPrice("part_large"));
  if (explain.ok()) std::printf("%s\n", explain->c_str());

  // 4. Step the simulation, printing both PIs' estimates for the large
  //    query. The single-query PI extrapolates the current (3-way
  //    shared) speed; the multi-query PI knows the small and medium
  //    queries will finish and the large query will speed up.
  std::printf("time   single-query est   multi-query est   (large query)\n");
  while (true) {
    runner.StepFor(2.0);
    auto info = db.info(large);
    check(info.status());
    if (info->state == sched::QueryState::kFinished) break;
    auto single = pis.EstimateSingle(large);
    auto multi = pis.EstimateMulti(large);
    std::printf("%5.1f  %17.1f  %16.1f\n", db.now(),
                single.ok() ? *single : -1.0, multi.ok() ? *multi : -1.0);
  }
  auto info = db.info(large);
  std::printf("\nlarge query finished at t=%.1f s (cost %.0f U, %llu rows)\n",
              info->finish_time, info->completed_work,
              static_cast<unsigned long long>(info->rows_produced));
  std::printf("small finished at %.1f s, medium at %.1f s\n",
              db.info(small)->finish_time, db.info(medium)->finish_time);
  return 0;
}
