// mqpi_shell: a tiny psql-style driver for the library, script-friendly
// (reads commands from stdin, echoes results to stdout). Run it
// interactively or pipe a script:
//
//   ./mqpi_shell <<'EOF'
//   gen lineitem 2000 30
//   gen part part_a 40
//   explain select count(*) from lineitem where partkey > 1900
//   submit select * from part_a p where p.retailprice * 0.75 >
//          (select sum(l.extendedprice) / sum(l.quantity)
//           from lineitem l where l.partkey = p.partkey)
//   step 5
//   pis
//   run
//   EOF
//
// Commands:
//   gen lineitem <keys> <matches>   build lineitem + index
//   gen part <name> <N_i>           build a part table (10*N_i rows)
//   submit <sql>                    parse, plan, and submit a query
//   explain <sql>                   show the plan without running
//   step <seconds>                  advance simulated time
//   pis                             progress dashboard (both estimators)
//   block <id> / resume <id> / abort <id>
//   priority <id> low|normal|high|critical
//   run                             step until idle
//   quit

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "engine/sql_parser.h"
#include "pi/pi_manager.h"
#include "sched/rdbms.h"
#include "storage/tpcr_gen.h"

using namespace mqpi;

namespace {

struct Shell {
  storage::Catalog catalog;
  std::unique_ptr<storage::TpcrGenerator> generator;
  std::unique_ptr<sched::Rdbms> db;
  std::unique_ptr<pi::PiManager> pis;

  Shell() {
    sched::RdbmsOptions options;
    options.processing_rate = 1000.0;
    options.quantum = 0.1;
    options.cost_model.noise_sigma = 0.15;
    db = std::make_unique<sched::Rdbms>(&catalog, options);
    pis = std::make_unique<pi::PiManager>(
        db.get(),
        pi::PiManagerOptions{.sample_interval = 1.0, .auto_track = true});
  }

  void Step(double seconds) {
    double remaining = seconds;
    while (remaining > 1e-9) {
      const double dt = std::min(remaining, db->options().quantum);
      db->Step(dt);
      pis->AfterStep();
      remaining -= dt;
    }
  }

  void ShowPis() {
    std::printf("t=%.1f s | running %d | queued %d\n", db->now(),
                db->num_running(), db->num_queued());
    for (const auto& row : pis->Report()) {
      std::printf("  #%llu %-8s %5.1f%%  single %8.8s  multi %8.8s  %s\n",
                  static_cast<unsigned long long>(row.id),
                  std::string(sched::QueryStateName(row.state)).c_str(),
                  100.0 * row.fraction_done,
                  row.eta_single == kUnknown || row.eta_single >= kInfiniteTime
                      ? "?"
                      : std::to_string(row.eta_single).c_str(),
                  row.eta_multi == kUnknown || row.eta_multi >= kInfiniteTime
                      ? "?"
                      : std::to_string(row.eta_multi).c_str(),
                  row.label.substr(0, 48).c_str());
    }
  }
};

Result<Priority> ParsePriority(const std::string& name) {
  if (name == "low") return Priority::kLow;
  if (name == "normal") return Priority::kNormal;
  if (name == "high") return Priority::kHigh;
  if (name == "critical") return Priority::kCritical;
  return Status::InvalidArgument("unknown priority '" + name + "'");
}

}  // namespace

int main() {
  Shell shell;
  std::string line;
  std::printf("mqpi shell — type commands (see source header); 'quit' "
              "exits.\n");
  while (std::getline(std::cin, line)) {
    std::istringstream is(line);
    std::string cmd;
    is >> cmd;
    if (cmd.empty() || cmd[0] == '#') continue;

    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "gen") {
      std::string what;
      is >> what;
      if (what == "lineitem") {
        std::int64_t keys = 2000;
        int matches = 30;
        is >> keys >> matches;
        shell.generator = std::make_unique<storage::TpcrGenerator>(
            storage::TpcrConfig{keys, matches, 42});
        const Status status = shell.generator->BuildLineitem(&shell.catalog);
        std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
      } else if (what == "part") {
        std::string name;
        std::int64_t n_i = 10;
        is >> name >> n_i;
        if (!shell.generator) {
          std::printf("error: gen lineitem first\n");
          continue;
        }
        const Status status =
            shell.generator->BuildPartTable(&shell.catalog, name, n_i);
        std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
      } else {
        std::printf("usage: gen lineitem <keys> <matches> | gen part "
                    "<name> <N_i>\n");
      }
      continue;
    }

    if (cmd == "submit" || cmd == "explain") {
      std::string sql;
      std::getline(is, sql);
      // Allow multi-line SQL: keep reading while the parse fails with a
      // premature end (simple heuristic: unbalanced parentheses).
      auto balanced = [](const std::string& s) {
        int depth = 0;
        for (char c : s) {
          if (c == '(') ++depth;
          if (c == ')') --depth;
        }
        return depth <= 0;
      };
      std::string more;
      while (!balanced(sql) && std::getline(std::cin, more)) {
        sql += " " + more;
      }
      auto spec = engine::ParseSql(sql);
      if (!spec.ok()) {
        std::printf("parse error: %s\n", spec.status().ToString().c_str());
        continue;
      }
      if (cmd == "explain") {
        auto report = shell.db->planner()->Explain(*spec);
        std::printf("%s\n", report.ok() ? report->c_str()
                                        : report.status().ToString().c_str());
      } else {
        auto id = shell.db->Submit(*spec);
        if (id.ok()) {
          std::printf("submitted #%llu\n",
                      static_cast<unsigned long long>(*id));
        } else {
          std::printf("error: %s\n", id.status().ToString().c_str());
        }
      }
      continue;
    }

    if (cmd == "step") {
      double seconds = 1.0;
      is >> seconds;
      shell.Step(seconds);
      std::printf("t=%.1f s\n", shell.db->now());
      continue;
    }
    if (cmd == "pis") {
      shell.ShowPis();
      continue;
    }
    if (cmd == "run") {
      while (!shell.db->Idle()) shell.Step(1.0);
      std::printf("idle at t=%.1f s\n", shell.db->now());
      continue;
    }
    if (cmd == "block" || cmd == "resume" || cmd == "abort") {
      QueryId id = 0;
      is >> id;
      const Status status = cmd == "block"    ? shell.db->Block(id)
                            : cmd == "resume" ? shell.db->Resume(id)
                                              : shell.db->Abort(id);
      std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
      continue;
    }
    if (cmd == "priority") {
      QueryId id = 0;
      std::string level;
      is >> id >> level;
      auto priority = ParsePriority(level);
      if (!priority.ok()) {
        std::printf("%s\n", priority.status().ToString().c_str());
        continue;
      }
      const Status status = shell.db->SetPriority(id, *priority);
      std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
      continue;
    }
    std::printf("unknown command '%s'\n", cmd.c_str());
  }
  return 0;
}
