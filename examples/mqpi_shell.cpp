// mqpi_shell: a tiny psql-style driver for the library, script-friendly
// (reads commands from stdin, echoes results to stdout). Since the
// service layer landed it runs against a PiService *session* in manual
// mode — the same admission accounting, ownership checks, snapshots,
// and metrics a concurrent deployment gets, but stepped
// deterministically by the `step` command instead of a ticker thread.
//
//   ./mqpi_shell <<'EOF'
//   gen lineitem 2000 30
//   gen part part_a 40
//   explain select count(*) from lineitem where partkey > 1900
//   submit select * from part_a p where p.retailprice * 0.75 >
//          (select sum(l.extendedprice) / sum(l.quantity)
//           from lineitem l where l.partkey = p.partkey)
//   step 5
//   pis
//   run
//   metrics
//   EOF
//
// Commands:
//   gen lineitem <keys> <matches>   build lineitem + index
//   gen part <name> <N_i>           build a part table (10*N_i rows)
//   submit <sql>                    parse, plan, and submit via the session
//   explain <sql>                   show the plan without running
//   step <seconds>                  advance simulated time
//   pis                             progress dashboard (snapshot contents)
//   block <id> / resume <id> / abort <id>   (session-owned queries only)
//   priority <id> low|normal|high|critical
//   run                             step until idle
//   metrics [prom]                  dump the metrics registry (text or
//                                   Prometheus exposition format)
//   accuracy                        estimate-accuracy report (auditor)
//   trace on|off                    toggle runtime tracing
//   trace save <path>               write a Chrome trace_event JSON file
//   trace jsonl <path>              write the trace as JSONL
//   trace clear                     drop buffered trace events
//   quit

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "engine/sql_parser.h"
#include "service/pi_service.h"
#include "service/session.h"
#include "storage/tpcr_gen.h"

using namespace mqpi;

namespace {

struct Shell {
  storage::Catalog catalog;
  std::unique_ptr<storage::TpcrGenerator> generator;
  std::unique_ptr<service::PiService> db;
  std::unique_ptr<service::Session> session;

  Shell() {
    service::PiServiceOptions options;
    options.rdbms.processing_rate = 1000.0;
    options.rdbms.quantum = 0.1;
    options.rdbms.cost_model.noise_sigma = 0.15;
    options.pi.sample_interval = 1.0;
    options.start_ticker = false;  // deterministic: we drive the clock
    db = std::make_unique<service::PiService>(&catalog, options);
    session = db->OpenSession("shell");
  }
  ~Shell() { session->Close(); }

  void ShowPis() {
    db->PublishNow();  // fold in submissions since the last step
    const service::SnapshotPtr snap = db->snapshot();
    std::printf("t=%.1f s | running %d | queued %d\n", snap->sim_time,
                snap->num_running, snap->num_queued);
    auto eta = [](SimTime t) -> std::string {
      if (t == kUnknown || t >= kInfiniteTime) return "?";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1fs", t);
      return buf;
    };
    for (const auto& q : snap->queries) {
      if (q.terminal()) continue;
      std::printf("  #%llu %-8s %5.1f%%  single %8s  multi %8s  %s\n",
                  static_cast<unsigned long long>(q.id),
                  std::string(sched::QueryStateName(q.state)).c_str(),
                  100.0 * q.fraction_done, eta(q.eta_single).c_str(),
                  eta(q.eta_multi).c_str(), q.label.substr(0, 48).c_str());
    }
  }
};

Result<Priority> ParsePriority(const std::string& name) {
  if (name == "low") return Priority::kLow;
  if (name == "normal") return Priority::kNormal;
  if (name == "high") return Priority::kHigh;
  if (name == "critical") return Priority::kCritical;
  return Status::InvalidArgument("unknown priority '" + name + "'");
}

}  // namespace

int main() {
  Shell shell;
  std::string line;
  std::printf("mqpi shell — type commands (see source header); 'quit' "
              "exits.\n");
  while (std::getline(std::cin, line)) {
    std::istringstream is(line);
    std::string cmd;
    is >> cmd;
    if (cmd.empty() || cmd[0] == '#') continue;

    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "gen") {
      std::string what;
      is >> what;
      if (what == "lineitem") {
        std::int64_t keys = 2000;
        int matches = 30;
        is >> keys >> matches;
        shell.generator = std::make_unique<storage::TpcrGenerator>(
            storage::TpcrConfig{keys, matches, 42});
        const Status status = shell.generator->BuildLineitem(&shell.catalog);
        std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
      } else if (what == "part") {
        std::string name;
        std::int64_t n_i = 10;
        is >> name >> n_i;
        if (!shell.generator) {
          std::printf("error: gen lineitem first\n");
          continue;
        }
        const Status status =
            shell.generator->BuildPartTable(&shell.catalog, name, n_i);
        std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
      } else {
        std::printf("usage: gen lineitem <keys> <matches> | gen part "
                    "<name> <N_i>\n");
      }
      continue;
    }

    if (cmd == "submit" || cmd == "explain") {
      std::string sql;
      std::getline(is, sql);
      // Allow multi-line SQL: keep reading while the parse fails with a
      // premature end (simple heuristic: unbalanced parentheses).
      auto balanced = [](const std::string& s) {
        int depth = 0;
        for (char c : s) {
          if (c == '(') ++depth;
          if (c == ')') --depth;
        }
        return depth <= 0;
      };
      std::string more;
      while (!balanced(sql) && std::getline(std::cin, more)) {
        sql += " " + more;
      }
      auto spec = engine::ParseSql(sql);
      if (!spec.ok()) {
        std::printf("parse error: %s\n", spec.status().ToString().c_str());
        continue;
      }
      if (cmd == "explain") {
        auto report = shell.db->Explain(*spec);
        std::printf("%s\n", report.ok() ? report->c_str()
                                        : report.status().ToString().c_str());
      } else {
        auto id = shell.session->Submit(*spec);
        if (id.ok()) {
          std::printf("submitted #%llu\n",
                      static_cast<unsigned long long>(*id));
        } else {
          std::printf("error: %s\n", id.status().ToString().c_str());
        }
      }
      continue;
    }

    if (cmd == "step") {
      double seconds = 1.0;
      is >> seconds;
      const Status status = shell.db->Advance(seconds);
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
        continue;
      }
      std::printf("t=%.1f s\n", shell.db->now());
      continue;
    }
    if (cmd == "pis") {
      shell.ShowPis();
      continue;
    }
    if (cmd == "run") {
      auto t = shell.db->AdvanceUntilIdle();
      if (t.ok()) {
        std::printf("idle at t=%.1f s\n", *t);
      } else {
        std::printf("error: %s\n", t.status().ToString().c_str());
      }
      continue;
    }
    if (cmd == "metrics") {
      std::string format;
      is >> format;
      std::printf("%s", format == "prom"
                            ? shell.db->metrics()->PrometheusDump().c_str()
                            : shell.db->metrics()->TextDump().c_str());
      continue;
    }
    if (cmd == "accuracy") {
      std::printf("%s", shell.db->auditor()->RenderText().c_str());
      continue;
    }
    if (cmd == "trace") {
      std::string sub;
      is >> sub;
      obs::Tracer* tracer = shell.db->tracer();
      if (sub == "on" || sub == "off") {
        tracer->set_enabled(sub == "on");
        std::printf("tracing %s\n", sub.c_str());
      } else if (sub == "clear") {
        tracer->Clear();
        std::printf("ok\n");
      } else if (sub == "save" || sub == "jsonl") {
        std::string path;
        is >> path;
        if (path.empty()) {
          std::printf("usage: trace %s <path>\n", sub.c_str());
          continue;
        }
        const Status status = sub == "save" ? tracer->WriteChromeTrace(path)
                                            : tracer->WriteJsonl(path);
        if (status.ok()) {
          std::printf("wrote %zu events to %s (%llu dropped)\n",
                      tracer->Events().size(), path.c_str(),
                      static_cast<unsigned long long>(tracer->dropped()));
        } else {
          std::printf("error: %s\n", status.ToString().c_str());
        }
      } else {
        std::printf("usage: trace on|off|clear|save <path>|jsonl <path>\n");
      }
      continue;
    }
    if (cmd == "block" || cmd == "resume" || cmd == "abort") {
      QueryId id = 0;
      is >> id;
      const Status status = cmd == "block"    ? shell.session->Block(id)
                            : cmd == "resume" ? shell.session->Resume(id)
                                              : shell.session->Abort(id);
      std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
      continue;
    }
    if (cmd == "priority") {
      QueryId id = 0;
      std::string level;
      is >> id >> level;
      auto priority = ParsePriority(level);
      if (!priority.ok()) {
        std::printf("%s\n", priority.status().ToString().c_str());
        continue;
      }
      const Status status = shell.session->SetPriority(id, *priority);
      std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
      continue;
    }
    std::printf("unknown command '%s'\n", cmd.c_str());
  }
  return 0;
}
