// pi_top: a remote top(1)-style progress dashboard over the wire
// protocol. Connects to a running pi_server, SUBSCRIBEs, and renders
// the pushed snapshot stream — full frame first, then deltas merged
// client-side by net::SnapshotView — so the server does O(changed
// rows) work per refresh no matter how many dashboards watch. Each
// refresh also issues a STATS round trip and renders a server-health
// footer: ticker liveness, watchdog restarts, shed consumers, and
// this connection's full/delta frame split.
//
// Usage: pi_top [host] [port] [seconds]
//   host     server address (default 127.0.0.1)
//   port     server port (default 7654)
//   seconds  how long to watch before disconnecting (default 30)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "net/client.h"
#include "sched/rdbms.h"

using namespace mqpi;

namespace {

std::string Bar(double fraction, int width) {
  if (fraction < 0.0) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::string bar(static_cast<std::size_t>(filled), '#');
  bar.append(static_cast<std::size_t>(width - filled), '.');
  return bar;
}

std::string Eta(double seconds) {
  if (seconds == kUnknown) return "?";
  if (seconds >= kInfiniteTime) return "inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  return buf;
}

void Render(const net::SnapshotView& view) {
  std::printf("\n=== seq #%llu | t = %5.1f s | running %d | queued %d | "
              "%llu fulls + %llu deltas applied ===\n",
              static_cast<unsigned long long>(view.sequence()),
              view.sim_time(), view.num_running(), view.num_queued(),
              static_cast<unsigned long long>(view.fulls_applied()),
              static_cast<unsigned long long>(view.deltas_applied()));
  std::printf("%-5s %-9s %-26s %8s %10s %6s\n", "id", "state", "progress",
              "done%", "multi ETA", "queue");
  for (const auto& q : view.Rows()) {
    if (q.terminal()) continue;
    const std::string queue_pos =
        q.queue_position >= 0 ? "#" + std::to_string(q.queue_position) : "-";
    std::printf("%-5llu %-9s [%s] %7.1f%% %10s %6s\n",
                static_cast<unsigned long long>(q.id),
                std::string(sched::QueryStateName(q.state)).c_str(),
                Bar(q.fraction_done, 24).c_str(), 100.0 * q.fraction_done,
                Eta(q.eta_multi).c_str(), queue_pos.c_str());
  }
}

// Sharded servers attach per-shard rows to STATS; single-shard servers
// send none and the footer stays exactly the classic two-line layout.
void RenderShards(const net::StatsReply& stats) {
  if (stats.shards.empty()) return;
  for (const net::ShardStatsRow& row : stats.shards) {
    std::printf("--- shard %d: up %llu quanta | published #%llu | age %.1f "
                "quanta%s | restarts %llu | running %d | queued %d ---\n",
                row.shard,
                static_cast<unsigned long long>(row.uptime_quanta),
                static_cast<unsigned long long>(row.snapshots_published),
                row.ticker_age_quanta, row.degraded ? " | DEGRADED" : "",
                static_cast<unsigned long long>(row.watchdog_restarts),
                row.num_running, row.num_queued);
  }
}

void RenderHealth(const net::StatsReply& stats) {
  std::printf("--- server: up %llu quanta | published #%llu | age %.1f "
              "quanta%s | restarts %llu | shed %llu ---\n",
              static_cast<unsigned long long>(stats.uptime_quanta),
              static_cast<unsigned long long>(stats.snapshots_published),
              stats.ticker_age_quanta, stats.degraded ? " | DEGRADED" : "",
              static_cast<unsigned long long>(stats.watchdog_restarts),
              static_cast<unsigned long long>(stats.consumers_shed));
  std::printf("--- conns %llu (%llu subscribed) | this conn: %llu frames "
              "(%llu full + %llu delta), %llu bytes, queue hw %llu ---\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.subscriptions),
              static_cast<unsigned long long>(stats.conn_frames_sent),
              static_cast<unsigned long long>(stats.conn_full_frames),
              static_cast<unsigned long long>(stats.conn_delta_frames),
              static_cast<unsigned long long>(stats.conn_bytes_sent),
              static_cast<unsigned long long>(stats.conn_queue_hw_frames));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string host = argc > 1 ? argv[1] : "127.0.0.1";
  const auto port = static_cast<std::uint16_t>(
      argc > 2 ? std::atoi(argv[2]) : 7654);
  const int seconds = argc > 3 ? std::atoi(argv[3]) : 30;

  auto connected = net::Client::Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "cannot connect to %s:%u: %s\n", host.c_str(), port,
                 connected.status().ToString().c_str());
    return 1;
  }
  auto client = std::move(connected).value();
  if (Status status = client->Subscribe(); !status.ok()) {
    std::fprintf(stderr, "subscribe failed: %s\n", status.ToString().c_str());
    return 1;
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    // Block until at least one snapshot newer than what we hold lands.
    const auto sequence =
        client->WaitForSequence(client->view().sequence() + 1, 1.0);
    if (!sequence.ok()) {
      // A timeout just means an idle server; anything else (server
      // shut down, subscription shed) ends the session.
      if (sequence.status().message().find("timed out") !=
          std::string::npos) {
        continue;
      }
      std::fprintf(stderr, "stream ended: %s\n",
                   sequence.status().ToString().c_str());
      break;
    }
    Render(client->view());
    if (auto stats = client->Stats(); stats.ok()) {
      RenderHealth(*stats);
      RenderShards(*stats);
    }
  }
  (void)client->Unsubscribe();
  return 0;
}
