// pi_server: serve live multi-query progress over TCP — and survive
// death.
//
// Starts a PiService in ticker mode (1 simulated second per wall
// second), binds a net::PiServer on the requested port, and keeps a
// Zipf-sized synthetic workload flowing through it for the duration:
// an initial batch plus a Poisson stream of later arrivals, exactly
// the paper's §5.2.3 traffic shape. While it runs, any number of
// clients can connect with the wire protocol — `pi_top` for a live
// dashboard, or the SUBMIT/PROGRESS/WHATIF request surface for
// programmatic consumers — and every published snapshot is pushed to
// subscribers as delta frames.
//
// The telemetry plane rides along: an HTTP listener on the same
// event loop serves /metrics (Prometheus text), /healthz, and
// /statusz, so `curl http://127.0.0.1:<http_port>/metrics` works
// while the binary protocol serves dashboards.
//
// Durability (optional 4th argument): with a journal directory the
// service runs on a recover::DurableLog — every lifecycle event is
// journaled, a checkpoint is cut every few seconds, and a kill -9
// mid-run recovers on the next start (same directory) to the exact
// pre-crash state. SIGTERM/SIGINT trigger the graceful path instead:
// admissions close (kUnavailable), the journal is flushed and a final
// checkpoint cut, subscribers get a goodbye frame, then the ticker
// stops.
//
// Sharding (--shards N): N independent core-pinned schedulers behind
// one coordinator. Sessions hash-route to shards by name, each shard
// publishes its own snapshot stream, and the server merges them into
// the global stream subscribers see by default (`pi_top` shows a
// per-shard health footer). With a journal directory, shard i journals
// into <journal_dir>/shard-<i> and the whole fleet recovers per shard.
//
// Usage: pi_server [--shards N] [port] [seconds] [http_port]
//                  [journal_dir]
//   --shards N  number of scheduler shards (default 1 = the classic
//               single-service layout)
//   port        TCP port to listen on (default 7654)
//   seconds     how long to serve before shutting down (default 60)
//   http_port   HTTP telemetry port (default 7655; -1 disables,
//               0 picks an ephemeral port)
//   journal_dir durable checkpoint/journal directory (default: none —
//               run ephemeral)

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include <string>
#include <vector>

#include "common/random.h"
#include "engine/planner.h"
#include "net/server.h"
#include "recover/recovery.h"
#include "service/pi_service.h"
#include "service/session.h"
#include "service/sharded_service.h"
#include "storage/catalog.h"

using namespace mqpi;

namespace {
// async-signal-safe flag; the main loop polls it once a second.
volatile std::sig_atomic_t g_shutdown = 0;
void OnSignal(int) { g_shutdown = 1; }

// The --shards N serve loop: N core-pinned schedulers behind one
// coordinator, sessions hash-routed, per-shard journals under
// <journal_dir>/shard-<i>.
int RunSharded(int shards, std::uint16_t port, int seconds, int http_port,
               const std::string& journal_dir,
               const service::PiServiceOptions& options) {
  storage::Catalog catalog;

  std::unique_ptr<recover::RecoveredShardedService> recovered;
  std::unique_ptr<service::ShardedPiService> ephemeral;
  service::ShardedPiService* coordinator = nullptr;
  if (!journal_dir.empty()) {
    auto result =
        recover::RecoverSharded(&catalog, journal_dir, shards, options);
    if (!result.ok()) {
      std::fprintf(stderr, "sharded recovery from %s failed: %s\n",
                   journal_dir.c_str(), result.status().ToString().c_str());
      return 1;
    }
    recovered = std::make_unique<recover::RecoveredShardedService>(
        std::move(*result));
    coordinator = recovered->coordinator.get();
    std::printf("recovered %d shards from %s: %llu events replayed%s\n",
                shards, journal_dir.c_str(),
                static_cast<unsigned long long>(recovered->events_replayed),
                recovered->all_verified ? "" : " (checkpoint UNVERIFIED)");
  } else {
    service::ShardedPiServiceOptions sharded_options;
    sharded_options.num_shards = shards;
    sharded_options.shard = options;
    sharded_options.pin_cpus = true;
    ephemeral = std::make_unique<service::ShardedPiService>(&catalog,
                                                            sharded_options);
    coordinator = ephemeral.get();
  }

  net::PiServerOptions server_options;
  server_options.port = port;
  server_options.http_port = http_port;
  net::PiServer server(coordinator, server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("pi_server listening on 127.0.0.1:%u for %d s "
              "(%d shards, core-pinned)\n",
              server.port(), seconds, shards);
  std::printf("connect a dashboard with: pi_top 127.0.0.1 %u\n",
              server.port());
  if (server.http_port() != 0) {
    std::printf("scrape telemetry with: curl http://127.0.0.1:%u/metrics "
                "(series labeled shard=\"i\"; also /healthz, /statusz)\n",
                server.http_port());
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);

  // One workload session per shard (distinct names route to distinct
  // shards only by hash — open enough to cover the fleet) feeding the
  // same batch + Poisson traffic shape as the single-shard demo.
  std::vector<std::unique_ptr<service::Session>> sessions;
  std::vector<bool> covered(static_cast<std::size_t>(shards), false);
  for (int i = 0;
       static_cast<int>(sessions.size()) < shards && i < shards * 64; ++i) {
    const std::string name = "pi-server-workload-" + std::to_string(i);
    const int routed = coordinator->Route(name);
    if (covered[static_cast<std::size_t>(routed)]) continue;
    covered[static_cast<std::size_t>(routed)] = true;
    sessions.push_back(coordinator->OpenSession(name));
  }
  if (recovered == nullptr || recovered->events_replayed == 0) {
    Rng rng(20060326);
    ZipfSampler sizes(50, 1.2);
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      for (int i = 0; i < 4; ++i) {
        (void)sessions[s]->Submit(
            engine::QuerySpec::Synthetic(50.0 * sizes.Sample(&rng)));
      }
      PoissonProcess arrivals(0.5);
      while (arrivals.current_time() < static_cast<double>(seconds)) {
        const double at = arrivals.NextArrival(&rng);
        (void)sessions[s]->SubmitAt(
            at, engine::QuerySpec::Synthetic(50.0 * sizes.Sample(&rng)));
      }
    }
  }

  constexpr int kCheckpointEverySeconds = 5;
  for (int elapsed = 0; elapsed < seconds && g_shutdown == 0; ++elapsed) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    const auto snap = coordinator->GlobalSnapshot();
    std::printf("t=%5.0fs  running %d  queued %d  shards %d  "
                "connections %.0f  frames sent %llu\n",
                snap->sim_time, snap->num_running, snap->num_queued,
                shards, server.metrics()->connections->value(),
                static_cast<unsigned long long>(
                    server.metrics()->frames_sent->value()));
    if (recovered != nullptr &&
        (elapsed + 1) % kCheckpointEverySeconds == 0) {
      for (int i = 0; i < shards; ++i) {
        const Status cut =
            recover::Checkpoint(recovered->shards[std::size_t(i)].service.get(),
                                recovered->shards[std::size_t(i)].log.get());
        if (!cut.ok()) {
          std::fprintf(stderr, "shard %d checkpoint failed: %s\n", i,
                       cut.ToString().c_str());
        }
      }
    }
  }

  std::printf(g_shutdown != 0 ? "signal received, draining %d shards\n"
                              : "time up, draining %d shards\n",
              shards);
  service::ShardedPiService::DrainHooks hooks;
  if (recovered != nullptr) {
    hooks.flush = [&](int shard) {
      recover::RecoveredService& rec = recovered->shards[std::size_t(shard)];
      rec.log->Sync();
      const Status cut = recover::Checkpoint(rec.service.get(), rec.log.get());
      if (!cut.ok()) {
        std::fprintf(stderr, "shard %d final checkpoint failed: %s\n", shard,
                     cut.ToString().c_str());
      }
    };
  }
  hooks.goodbye = [&] { (void)server.Drain(); };
  const Status drained = coordinator->Drain(hooks);
  if (!drained.ok()) {
    std::fprintf(stderr, "drain failed: %s\n", drained.ToString().c_str());
  }
  server.Stop();
  for (auto& session : sessions) {
    session->Close();
    session.reset();
  }
  ephemeral.reset();
  recovered.reset();  // per shard: sessions, then service, then the log
  return 0;
}
}  // namespace

int main(int argc, char** argv) {
  int shards = 1;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--shards" && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
      if (shards < 1) shards = 1;
      continue;
    }
    positional.emplace_back(argv[i]);
  }
  const auto port = static_cast<std::uint16_t>(
      positional.size() > 0 ? std::atoi(positional[0].c_str()) : 7654);
  const int seconds =
      positional.size() > 1 ? std::atoi(positional[1].c_str()) : 60;
  const int http_port =
      positional.size() > 2 ? std::atoi(positional[2].c_str()) : 7655;
  const std::string journal_dir = positional.size() > 3 ? positional[3] : "";

  service::PiServiceOptions options;
  options.rdbms.processing_rate = 100.0;
  options.rdbms.quantum = 0.25;
  options.time_scale = 1.0;  // 1 simulated second per wall second
  // The demo serves its own telemetry: the per-site cost breakdown on
  // /statusz is empty without the profiler armed.
  options.enable_profiler = true;

  if (shards > 1) {
    return RunSharded(shards, port, seconds, http_port, journal_dir,
                      options);
  }

  storage::Catalog catalog;

  // With a journal dir the service is recovered from (or freshly
  // anchored in) the durable log; without one it runs ephemeral.
  std::unique_ptr<recover::RecoveredService> recovered;
  std::unique_ptr<service::PiService> ephemeral;
  service::PiService* service = nullptr;
  recover::DurableLog* log = nullptr;
  if (!journal_dir.empty()) {
    auto result = recover::Recover(&catalog, journal_dir, options);
    if (!result.ok()) {
      std::fprintf(stderr, "recovery from %s failed: %s\n",
                   journal_dir.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    recovered = std::make_unique<recover::RecoveredService>(
        std::move(*result));
    service = recovered->service.get();
    log = recovered->log.get();
    std::printf("recovered from %s: %llu events replayed%s%s\n",
                journal_dir.c_str(),
                static_cast<unsigned long long>(recovered->events_replayed),
                recovered->had_checkpoint
                    ? (recovered->verified ? ", checkpoint verified"
                                           : ", checkpoint UNVERIFIED")
                    : ", no checkpoint",
                recovered->tail_truncated ? ", torn tail truncated" : "");
  } else {
    ephemeral = std::make_unique<service::PiService>(&catalog, options);
    service = ephemeral.get();
  }

  net::PiServerOptions server_options;
  server_options.port = port;
  server_options.http_port = http_port;
  net::PiServer server(service, server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("pi_server listening on 127.0.0.1:%u for %d s\n",
              server.port(), seconds);
  std::printf("connect a dashboard with: pi_top 127.0.0.1 %u\n",
              server.port());
  if (server.http_port() != 0) {
    std::printf("scrape telemetry with: curl http://127.0.0.1:%u/metrics "
                "(also /healthz, /statusz)\n",
                server.http_port());
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);

  // The workload: a starting batch plus Poisson arrivals, query sizes
  // Zipf-skewed like the paper's evaluation mix. A recovered run
  // already carries its replayed workload — top it up only when fresh.
  auto session = service->OpenSession("pi-server-workload");
  if (recovered == nullptr || recovered->events_replayed == 0) {
    Rng rng(20060326);
    ZipfSampler sizes(50, 1.2);
    for (int i = 0; i < 4; ++i) {
      (void)session->Submit(
          engine::QuerySpec::Synthetic(50.0 * sizes.Sample(&rng)));
    }
    PoissonProcess arrivals(0.5);
    while (arrivals.current_time() < static_cast<double>(seconds)) {
      const double at = arrivals.NextArrival(&rng);
      (void)session->SubmitAt(
          at, engine::QuerySpec::Synthetic(50.0 * sizes.Sample(&rng)));
    }
  }

  constexpr int kCheckpointEverySeconds = 5;
  for (int elapsed = 0; elapsed < seconds && g_shutdown == 0; ++elapsed) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    const auto snap = service->snapshot();
    std::printf("t=%5.0fs  running %d  queued %d  connections %.0f  "
                "subscriptions %.0f  frames sent %llu\n",
                snap->sim_time, snap->num_running, snap->num_queued,
                server.metrics()->connections->value(),
                server.metrics()->subscriptions->value(),
                static_cast<unsigned long long>(
                    server.metrics()->frames_sent->value()));
    if (log != nullptr && (elapsed + 1) % kCheckpointEverySeconds == 0) {
      const Status cut = recover::Checkpoint(service, log);
      if (!cut.ok()) {
        std::fprintf(stderr, "checkpoint failed: %s\n",
                     cut.ToString().c_str());
      }
    }
  }

  // Graceful drain, whether by SIGTERM or by running out the clock:
  // close admissions, flush + final checkpoint, goodbye subscribers,
  // stop the ticker.
  std::printf(g_shutdown != 0 ? "signal received, draining\n"
                              : "time up, draining\n");
  service::PiService::DrainHooks hooks;
  hooks.flush = [&] {
    if (log == nullptr) return;
    log->Sync();
    const Status cut = recover::Checkpoint(service, log);
    if (!cut.ok()) {
      std::fprintf(stderr, "final checkpoint failed: %s\n",
                   cut.ToString().c_str());
    }
  };
  hooks.goodbye = [&] { (void)server.Drain(); };
  const Status drained = service->Drain(hooks);
  if (!drained.ok()) {
    std::fprintf(stderr, "drain failed: %s\n", drained.ToString().c_str());
  }
  server.Stop();
  session->Close();
  session.reset();
  recovered.reset();  // sessions, then service, then the log
  return 0;
}
