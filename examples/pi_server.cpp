// pi_server: serve live multi-query progress over TCP.
//
// Starts a PiService in ticker mode (1 simulated second per wall
// second), binds a net::PiServer on the requested port, and keeps a
// Zipf-sized synthetic workload flowing through it for the duration:
// an initial batch plus a Poisson stream of later arrivals, exactly
// the paper's §5.2.3 traffic shape. While it runs, any number of
// clients can connect with the wire protocol — `pi_top` for a live
// dashboard, or the SUBMIT/PROGRESS/WHATIF request surface for
// programmatic consumers — and every published snapshot is pushed to
// subscribers as delta frames.
//
// The telemetry plane rides along: an HTTP listener on the same
// event loop serves /metrics (Prometheus text), /healthz, and
// /statusz, so `curl http://127.0.0.1:<http_port>/metrics` works
// while the binary protocol serves dashboards.
//
// Usage: pi_server [port] [seconds] [http_port]
//   port       TCP port to listen on (default 7654)
//   seconds    how long to serve before shutting down (default 60)
//   http_port  HTTP telemetry port (default 7655; -1 disables,
//              0 picks an ephemeral port)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/random.h"
#include "engine/planner.h"
#include "net/server.h"
#include "service/pi_service.h"
#include "service/session.h"
#include "storage/catalog.h"

using namespace mqpi;

int main(int argc, char** argv) {
  const auto port = static_cast<std::uint16_t>(
      argc > 1 ? std::atoi(argv[1]) : 7654);
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 60;
  const int http_port = argc > 3 ? std::atoi(argv[3]) : 7655;

  storage::Catalog catalog;
  service::PiServiceOptions options;
  options.rdbms.processing_rate = 100.0;
  options.rdbms.quantum = 0.25;
  options.time_scale = 1.0;  // 1 simulated second per wall second
  // The demo serves its own telemetry: the per-site cost breakdown on
  // /statusz is empty without the profiler armed.
  options.enable_profiler = true;
  service::PiService service(&catalog, options);

  net::PiServerOptions server_options;
  server_options.port = port;
  server_options.http_port = http_port;
  net::PiServer server(&service, server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("pi_server listening on 127.0.0.1:%u for %d s\n",
              server.port(), seconds);
  std::printf("connect a dashboard with: pi_top 127.0.0.1 %u\n",
              server.port());
  if (server.http_port() != 0) {
    std::printf("scrape telemetry with: curl http://127.0.0.1:%u/metrics "
                "(also /healthz, /statusz)\n",
                server.http_port());
  }

  // The workload: a starting batch plus Poisson arrivals, query sizes
  // Zipf-skewed like the paper's evaluation mix.
  auto session = service.OpenSession("pi-server-workload");
  Rng rng(20060326);
  ZipfSampler sizes(50, 1.2);
  for (int i = 0; i < 4; ++i) {
    (void)session->Submit(
        engine::QuerySpec::Synthetic(50.0 * sizes.Sample(&rng)));
  }
  PoissonProcess arrivals(0.5);
  while (arrivals.current_time() < static_cast<double>(seconds)) {
    const double at = arrivals.NextArrival(&rng);
    (void)session->SubmitAt(
        at, engine::QuerySpec::Synthetic(50.0 * sizes.Sample(&rng)));
  }

  for (int elapsed = 0; elapsed < seconds; ++elapsed) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    const auto snap = service.snapshot();
    std::printf("t=%5.0fs  running %d  queued %d  connections %.0f  "
                "subscriptions %.0f  frames sent %llu\n",
                snap->sim_time, snap->num_running, snap->num_queued,
                server.metrics()->connections->value(),
                server.metrics()->subscriptions->value(),
                static_cast<unsigned long long>(
                    server.metrics()->frames_sent->value()));
  }

  std::printf("shutting down\n");
  server.Stop();
  session->Close();
  service.Stop();
  return 0;
}
