// Scheduled-maintenance walkthrough (paper Section 3.3 / 5.3).
//
// A DBA must take the system down for maintenance in a fixed number of
// seconds. This example runs a mixed workload, then compares what each
// policy would do at the decision instant — no PI, single-query PI,
// multi-query PI, and the exact-information optimum — and executes the
// multi-query plan, verifying the system quiesces in time.

#include <cstdio>
#include <string>
#include <vector>

#include "pi/pi_manager.h"
#include "sched/rdbms.h"
#include "sim/runner.h"
#include "storage/tpcr_gen.h"
#include "wlm/maintenance.h"
#include "wlm/wlm_advisor.h"

using namespace mqpi;

namespace {

void Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  // Data: lineitem plus a spread of part tables.
  storage::Catalog catalog;
  storage::TpcrGenerator generator(
      {.num_part_keys = 3000, .matches_per_key = 30, .seed = 7});
  if (auto s = generator.BuildLineitem(&catalog); !s.ok()) Fail(s);
  for (int n : {5, 10, 20, 40, 80}) {
    if (auto s = generator.BuildPartTable(
            &catalog, "part_n" + std::to_string(n), n);
        !s.ok()) {
      Fail(s);
    }
  }

  sched::RdbmsOptions options;
  options.processing_rate = 500.0;
  options.quantum = 0.1;
  options.cost_model.noise_sigma = 0.15;
  sched::Rdbms db(&catalog, options);
  pi::PiManager pis(&db, {.sample_interval = 1.0});
  sim::SimulationRunner runner(&db, &pis);

  // Submit a mix and let it run for a while so queries are at varied
  // stages when the maintenance request lands.
  for (int n : {80, 40, 20, 10, 5, 40, 20}) {
    auto id = runner.SubmitNow(
        engine::QuerySpec::TpcrPartPrice("part_n" + std::to_string(n)));
    if (!id.ok()) Fail(id.status());
    pis.Track(*id);
  }
  runner.StepFor(20.0);

  std::printf("t=%.1f s: maintenance must start in 30 s. System state:\n",
              db.now());
  std::printf("  %-4s %-10s %-12s %-12s %-14s\n", "id", "state",
              "done (U)", "est rem (U)", "multi-PI ETA (s)");
  for (const auto& info : db.AllQueries()) {
    if (info.state != sched::QueryState::kRunning) continue;
    auto eta = pis.EstimateMulti(info.id);
    std::printf("  %-4llu %-10s %-12.0f %-12.0f %-14.1f\n",
                static_cast<unsigned long long>(info.id),
                std::string(sched::QueryStateName(info.state)).c_str(),
                info.completed_work, info.estimated_remaining_cost,
                eta.ok() ? *eta : -1.0);
  }

  // What would each policy abort?
  const double deadline = 30.0;
  std::vector<wlm::MaintenanceQuery> snapshot;
  for (const auto& info : db.RunningQueries()) {
    snapshot.push_back(wlm::MaintenanceQuery{
        info.id, info.completed_work, info.estimated_remaining_cost});
  }
  auto greedy = wlm::MaintenancePlanner::PlanGreedy(
      snapshot, deadline, db.EffectiveRate(), wlm::LossMetric::kTotalCost);
  auto optimal = wlm::MaintenancePlanner::PlanOptimal(
      snapshot, deadline, db.EffectiveRate(), wlm::LossMetric::kTotalCost);
  if (!greedy.ok()) Fail(greedy.status());
  if (!optimal.ok()) Fail(optimal.status());

  auto describe = [](const char* name, const wlm::MaintenancePlan& plan) {
    std::printf("\n%s: abort {", name);
    for (std::size_t i = 0; i < plan.abort_now.size(); ++i) {
      std::printf("%s%llu", i ? ", " : "",
                  static_cast<unsigned long long>(plan.abort_now[i]));
    }
    std::printf("}  lost work %.0f U, predicted quiescent in %.1f s",
                plan.lost_work, plan.quiescent_time);
  };
  describe("Section 3.3 greedy (multi-query PI)", *greedy);
  describe("Exact knapsack (oracle)", *optimal);
  std::printf("\n");

  // Execute the multi-query-PI plan for real.
  wlm::WlmAdvisor advisor(&db);
  auto applied = advisor.PrepareMaintenance(deadline,
                                            wlm::LossMetric::kTotalCost,
                                            wlm::MaintenanceMethod::kMultiPi,
                                            &pis);
  if (!applied.ok()) Fail(applied.status());
  const SimTime decision_time = db.now();
  runner.StepFor(deadline);
  const auto leftovers = advisor.AbortAllUnfinished();

  std::printf("\nExecuted the multi-query plan at t=%.1f s:\n",
              decision_time);
  std::printf("  aborted at decision time: %zu queries\n",
              applied->abort_now.size());
  std::printf("  still unfinished at the deadline: %zu queries\n",
              leftovers.size());
  int finished = 0;
  for (const auto& info : db.AllQueries()) {
    if (info.state == sched::QueryState::kFinished &&
        info.finish_time > decision_time) {
      ++finished;
    }
  }
  std::printf("  queries that finished inside the window: %d\n", finished);
  std::printf("  system idle and ready for maintenance at t=%.1f s\n",
              db.now());
  return 0;
}
